//! `decolor color <algorithm> <spec>`.

use decolor_baselines::distributed::two_delta_minus_one_edge_coloring;
use decolor_baselines::greedy::greedy_edge_coloring;
use decolor_baselines::misra_gries::misra_gries_edge_coloring;
use decolor_baselines::randomized::randomized_edge_coloring;
use decolor_core::arboricity::{corollary55, theorem52, theorem53, theorem54};
use decolor_core::cd_coloring::{cd_edge_coloring, cd_edge_coloring_spilled, CdParams};
use decolor_core::delta_plus_one::SubroutineConfig;
use decolor_core::star_partition::{
    star_partition_edge_coloring, star_partition_edge_coloring_spilled, StarPartitionParams,
};
use decolor_core::verify;
use decolor_graph::coloring::EdgeColoring;
use decolor_graph::subgraph::GraphView;
use decolor_graph::Graph;
use decolor_runtime::NetworkStats;

use crate::args::{opt_f64, opt_usize, parse_kv, Parsed};
use crate::spec::build_graph;

/// Runs the requested edge-coloring algorithm; prints palette, distinct
/// colors, rounds and messages; validates properness.
///
/// # Errors
///
/// Malformed algorithm/spec or algorithm precondition failures.
pub fn run(parsed: &mut Parsed) -> Result<String, String> {
    let algo = parsed
        .positional(0)
        .ok_or("color needs an algorithm")?
        .to_string();
    let spec = parsed
        .positional(1)
        .ok_or("color needs a graph spec")?
        .to_string();
    let g = build_graph(&spec)?;
    let (coloring, stats, label) = match parsed.option("backend").unwrap_or("ram") {
        "ram" => dispatch(&algo, &g)?,
        "mmap" => dispatch_mmap(&algo, &g)?,
        other => {
            return Err(format!(
                "unknown --backend `{other}` (expected ram or mmap)"
            ))
        }
    };
    if !coloring.is_proper(&g) {
        return Err("internal error: produced an improper coloring".into());
    }
    let mut verify_report = String::new();
    if parsed.option("verify").is_some() {
        verify_report = certificate_report(&algo, &g, &coloring)?;
    }
    let delta = g.max_degree();
    let mut out = format!(
        "{label} on {spec} (n = {}, m = {}, Δ = {delta})\n",
        g.num_vertices(),
        g.num_edges()
    );
    out.push_str(&format!(
        "palette {}  distinct {}  (Δ+1 = {}, 2Δ−1 = {})\n",
        coloring.palette(),
        coloring.distinct_colors(),
        delta + 1,
        (2 * delta).saturating_sub(1).max(1),
    ));
    match stats {
        Some(s) => out.push_str(&format!(
            "rounds {}  messages {}  payload {} bytes\n",
            s.rounds, s.messages, s.payload_bytes
        )),
        None => out.push_str("centralized (no LOCAL rounds)\n"),
    }
    out.push_str(&verify_report);
    out.push_str(&super::write_artifacts(parsed, &g, Some(&coloring))?);
    Ok(out)
}

/// Runs the applicable certificate checks for the chosen algorithm.
fn certificate_report(algo: &str, g: &Graph, coloring: &EdgeColoring) -> Result<String, String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let checks = match name {
        "star" => verify::check_star_partition(g, coloring, opt_usize(&kv, "x", 1)? as u32),
        "t52" => verify::check_theorem52(
            g,
            coloring,
            opt_usize(&kv, "a", 2)? as u64,
            opt_f64(&kv, "q", 2.5)?,
        ),
        "t54" => verify::check_theorem54(
            g,
            coloring,
            opt_usize(&kv, "a", 2)? as u64,
            opt_f64(&kv, "q", 2.5)?,
            opt_usize(&kv, "x", 2)? as u32,
        ),
        _ => vec![],
    };
    if checks.is_empty() {
        return Ok("(no certificate checks registered for this algorithm)
"
        .into());
    }
    verify::ensure_all(&checks).map_err(|e| e.to_string())?;
    Ok(verify::render_report(&checks))
}

/// Algorithms [`dispatch_mmap`] handles. The unsupported-algorithm error
/// message is derived from this table, and `mmap_dispatch_matches_ram`
/// pins that every listed name actually dispatches — so the list cannot
/// drift from the match arms.
const MMAP_SUPPORTED: &[&str] = &["star", "cd", "t52", "t53", "t54", "c55"];

/// Runs the algorithm on the **out-of-core backend**: the graph is
/// spilled to a sharded mmap CSR under a scratch directory and the
/// view-generic pipeline runs on it unmodified (bit-identical results to
/// the ram backend — pinned by the core backend-equivalence tests).
/// star and cd additionally stream their derived graphs (the top-level
/// edge connector and the line graph) into sharded CSRs under the same
/// scratch root, so no in-RAM `Graph` is materialized on any path.
/// Algorithms whose entry points are still `Graph`-bound report a clear
/// error instead of silently falling back.
fn dispatch_mmap(
    algo: &str,
    g: &Graph,
) -> Result<(EdgeColoring, Option<NetworkStats>, String), String> {
    static SCRATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SCRATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("decolor-cli-mmap-{}-{seq}", std::process::id()));
    dispatch_mmap_in(algo, g, &dir)
}

/// [`dispatch_mmap`] with an explicit scratch root — split out so tests
/// can pin that the root is gone after success *and* error exits.
fn dispatch_mmap_in(
    algo: &str,
    g: &Graph,
    dir: &std::path::Path,
) -> Result<(EdgeColoring, Option<NetworkStats>, String), String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let cfg = SubroutineConfig::default();
    let err = |e: decolor_core::AlgoError| e.to_string();
    if !MMAP_SUPPORTED.contains(&name) {
        return Err(match name {
            "baseline" | "misra" | "random" | "greedy" => format!(
                "algorithm `{name}` does not support --backend mmap yet (supported: {})",
                MMAP_SUPPORTED.join(", ")
            ),
            other => format!("unknown algorithm `{other}`"),
        });
    }
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let _cleanup = Cleanup(dir.to_path_buf());
    let sc = decolor_graph::storage::ShardedCsr::from_graph(dir.join("input"), g)
        .map_err(|e| format!("cannot spill graph to mmap storage: {e}"))?;
    match name {
        "star" => {
            let x = opt_usize(&kv, "x", 1)?;
            let res = star_partition_edge_coloring_spilled(
                &sc,
                &StarPartitionParams::for_levels(&sc, x),
                &dir.join("conn"),
            )
            .map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("star partition (x = {x}) [mmap backend]"),
            ))
        }
        "cd" => {
            let x = opt_usize(&kv, "x", 1)?;
            let (c, s) = cd_edge_coloring_spilled(
                &sc,
                &CdParams::for_levels(sc.max_degree().max(2), x),
                &dir.join("lg"),
            )
            .map_err(err)?;
            Ok((
                c,
                Some(s),
                format!("CD-Coloring of the line graph (x = {x}) [mmap backend]"),
            ))
        }
        "t52" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem52(&sc, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.2 (a = {a}) [mmap backend]"),
            ))
        }
        "t53" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem53(&sc, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.3 (a = {a}) [mmap backend]"),
            ))
        }
        "t54" => {
            let a = opt_usize(&kv, "a", 2)?;
            let x = opt_usize(&kv, "x", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem54(&sc, a, q, x, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.4 (a = {a}, x = {x}) [mmap backend]"),
            ))
        }
        "c55" => {
            let a = opt_usize(&kv, "a", 2)?;
            let (res, p) = corollary55(&sc, a, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!(
                    "Corollary 5.5 (a = {a}; chose x = {}, q = {:.1}) [mmap backend]",
                    p.x, p.q
                ),
            ))
        }
        other => Err(format!(
            "algorithm `{other}` is listed as mmap-supported but has no dispatch arm"
        )),
    }
}

fn dispatch(algo: &str, g: &Graph) -> Result<(EdgeColoring, Option<NetworkStats>, String), String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let cfg = SubroutineConfig::default();
    let err = |e: decolor_core::AlgoError| e.to_string();
    match name {
        "star" => {
            let x = opt_usize(&kv, "x", 1)?;
            let res = star_partition_edge_coloring(g, &StarPartitionParams::for_levels(g, x))
                .map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("star partition (x = {x})"),
            ))
        }
        "cd" => {
            let x = opt_usize(&kv, "x", 1)?;
            let (c, s) = cd_edge_coloring(g, &CdParams::for_levels(g.max_degree().max(2), x))
                .map_err(err)?;
            Ok((
                c,
                Some(s),
                format!("CD-Coloring of the line graph (x = {x})"),
            ))
        }
        "t52" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem52(g, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.2 (a = {a})"),
            ))
        }
        "t53" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem53(g, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.3 (a = {a})"),
            ))
        }
        "t54" => {
            let a = opt_usize(&kv, "a", 2)?;
            let x = opt_usize(&kv, "x", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem54(g, a, q, x, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.4 (a = {a}, x = {x})"),
            ))
        }
        "c55" => {
            let a = opt_usize(&kv, "a", 2)?;
            let (res, p) = corollary55(g, a, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Corollary 5.5 (a = {a}; chose x = {}, q = {:.1})", p.x, p.q),
            ))
        }
        "baseline" => {
            let (c, s) = two_delta_minus_one_edge_coloring(g).map_err(err)?;
            Ok((c, Some(s), "(2Δ−1) baseline".to_string()))
        }
        "misra" => Ok((
            misra_gries_edge_coloring(g),
            None,
            "Misra–Gries (Δ+1)".to_string(),
        )),
        "random" => {
            let seed = opt_usize(&kv, "seed", 0)? as u64;
            let delta = g.max_degree() as u64;
            let palette = (2 * delta).saturating_sub(1).max(1);
            let (c, s) = randomized_edge_coloring(g, palette, seed).map_err(err)?;
            Ok((c, Some(s), "randomized (2Δ−1), Luby-style".to_string()))
        }
        "greedy" => Ok((greedy_edge_coloring(g), None, "greedy (2Δ−1)".to_string())),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_dispatch_matches_ram() {
        let g = decolor_graph::generators::forest_union(60, 2, 6, 1).unwrap();
        // One parameterization per MMAP_SUPPORTED entry — pins the const
        // against the dispatch table.
        let algos = [
            "star:x=1",
            "cd:x=1",
            "t52:a=2",
            "t53:a=2",
            "t54:a=2,x=2",
            "c55:a=2",
        ];
        for name in MMAP_SUPPORTED {
            assert!(
                algos.iter().any(|a| a.split(':').next() == Some(*name)),
                "MMAP_SUPPORTED entry `{name}` is not exercised"
            );
        }
        for algo in algos {
            let (ram, ram_stats, _) = dispatch(algo, &g).unwrap();
            let (mmap, mmap_stats, label) = dispatch_mmap(algo, &g).unwrap();
            assert_eq!(mmap.as_slice(), ram.as_slice(), "{algo} diverges");
            assert_eq!(mmap_stats, ram_stats, "{algo} ledger diverges");
            assert!(label.contains("mmap backend"));
        }
        let err = dispatch_mmap("misra", &g).unwrap_err();
        assert!(err.contains("does not support --backend mmap"), "{err}");
        assert!(
            err.contains(&MMAP_SUPPORTED.join(", ")),
            "error list not derived from dispatch table: {err}"
        );
        assert!(dispatch_mmap("zzz", &g).unwrap_err().contains("unknown"));
    }

    #[test]
    fn mmap_scratch_removed_on_success_and_error() {
        let g = decolor_graph::generators::forest_union(60, 2, 6, 1).unwrap();
        let root =
            std::env::temp_dir().join(format!("decolor-cli-scratch-test-{}", std::process::id()));
        for algo in ["star:x=1", "cd:x=1", "t53:a=2"] {
            let dir = root.join(algo.replace([':', ','], "-"));
            dispatch_mmap_in(algo, &g, &dir).unwrap();
            assert!(!dir.exists(), "{algo}: scratch survived a success exit");
        }
        // q < 2 fails inside theorem52 *after* the graph was spilled.
        let dir = root.join("err");
        assert!(dispatch_mmap_in("t52:a=2,q=1.0", &g, &dir).is_err());
        assert!(!dir.exists(), "scratch survived an error exit");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn dispatch_every_algorithm() {
        let g = decolor_graph::generators::forest_union(60, 2, 6, 1).unwrap();
        for algo in [
            "star:x=1",
            "star:x=2",
            "cd:x=1",
            "t52:a=2",
            "t53:a=2",
            "t54:a=2,x=2",
            "c55:a=2",
            "baseline",
            "misra",
            "greedy",
            "random:seed=1",
        ] {
            let result = dispatch(algo, &g);
            assert!(result.is_ok(), "{algo}: {}", result.unwrap_err());
            let (c, _, _) = result.unwrap();
            assert!(c.is_proper(&g), "{algo} produced improper coloring");
        }
        assert!(dispatch("zzz", &g).is_err());
    }
}

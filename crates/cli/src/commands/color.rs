//! `decolor color <algorithm> <spec>`.

use decolor_baselines::distributed::two_delta_minus_one_edge_coloring;
use decolor_baselines::greedy::greedy_edge_coloring;
use decolor_baselines::misra_gries::misra_gries_edge_coloring;
use decolor_baselines::randomized::randomized_edge_coloring;
use decolor_core::arboricity::{corollary55, theorem52, theorem53, theorem54};
use decolor_core::cd_coloring::{cd_edge_coloring, CdParams};
use decolor_core::delta_plus_one::SubroutineConfig;
use decolor_core::star_partition::{star_partition_edge_coloring, StarPartitionParams};
use decolor_core::verify;
use decolor_graph::coloring::EdgeColoring;
use decolor_graph::Graph;
use decolor_runtime::NetworkStats;

use crate::args::{opt_f64, opt_usize, parse_kv, Parsed};
use crate::spec::build_graph;

/// Runs the requested edge-coloring algorithm; prints palette, distinct
/// colors, rounds and messages; validates properness.
///
/// # Errors
///
/// Malformed algorithm/spec or algorithm precondition failures.
pub fn run(parsed: &mut Parsed) -> Result<String, String> {
    let algo = parsed
        .positional(0)
        .ok_or("color needs an algorithm")?
        .to_string();
    let spec = parsed
        .positional(1)
        .ok_or("color needs a graph spec")?
        .to_string();
    let g = build_graph(&spec)?;
    let (coloring, stats, label) = match parsed.option("backend").unwrap_or("ram") {
        "ram" => dispatch(&algo, &g)?,
        "mmap" => dispatch_mmap(&algo, &g)?,
        other => {
            return Err(format!(
                "unknown --backend `{other}` (expected ram or mmap)"
            ))
        }
    };
    if !coloring.is_proper(&g) {
        return Err("internal error: produced an improper coloring".into());
    }
    let mut verify_report = String::new();
    if parsed.option("verify").is_some() {
        verify_report = certificate_report(&algo, &g, &coloring)?;
    }
    let delta = g.max_degree();
    let mut out = format!(
        "{label} on {spec} (n = {}, m = {}, Δ = {delta})\n",
        g.num_vertices(),
        g.num_edges()
    );
    out.push_str(&format!(
        "palette {}  distinct {}  (Δ+1 = {}, 2Δ−1 = {})\n",
        coloring.palette(),
        coloring.distinct_colors(),
        delta + 1,
        (2 * delta).saturating_sub(1).max(1),
    ));
    match stats {
        Some(s) => out.push_str(&format!(
            "rounds {}  messages {}  payload {} bytes\n",
            s.rounds, s.messages, s.payload_bytes
        )),
        None => out.push_str("centralized (no LOCAL rounds)\n"),
    }
    out.push_str(&verify_report);
    out.push_str(&super::write_artifacts(parsed, &g, Some(&coloring))?);
    Ok(out)
}

/// Runs the applicable certificate checks for the chosen algorithm.
fn certificate_report(algo: &str, g: &Graph, coloring: &EdgeColoring) -> Result<String, String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let checks = match name {
        "star" => verify::check_star_partition(g, coloring, opt_usize(&kv, "x", 1)? as u32),
        "t52" => verify::check_theorem52(
            g,
            coloring,
            opt_usize(&kv, "a", 2)? as u64,
            opt_f64(&kv, "q", 2.5)?,
        ),
        "t54" => verify::check_theorem54(
            g,
            coloring,
            opt_usize(&kv, "a", 2)? as u64,
            opt_f64(&kv, "q", 2.5)?,
            opt_usize(&kv, "x", 2)? as u32,
        ),
        _ => vec![],
    };
    if checks.is_empty() {
        return Ok("(no certificate checks registered for this algorithm)
"
        .into());
    }
    verify::ensure_all(&checks).map_err(|e| e.to_string())?;
    Ok(verify::render_report(&checks))
}

/// Runs the algorithm on the **out-of-core backend**: the graph is
/// spilled to a sharded mmap CSR under a scratch directory and the
/// view-generic pipeline runs on it unmodified (bit-identical results to
/// the ram backend — pinned by the core backend-equivalence tests).
/// Algorithms whose entry points are still `Graph`-bound report a clear
/// error instead of silently falling back.
fn dispatch_mmap(
    algo: &str,
    g: &Graph,
) -> Result<(EdgeColoring, Option<NetworkStats>, String), String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let cfg = SubroutineConfig::default();
    let err = |e: decolor_core::AlgoError| e.to_string();
    let dir = std::env::temp_dir().join(format!("decolor-cli-mmap-{}", std::process::id()));
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let _cleanup = Cleanup(dir.clone());
    let sc = decolor_graph::storage::ShardedCsr::from_graph(&dir, g)
        .map_err(|e| format!("cannot spill graph to mmap storage: {e}"))?;
    match name {
        "star" => {
            let x = opt_usize(&kv, "x", 1)?;
            let res = star_partition_edge_coloring(&sc, &StarPartitionParams::for_levels(&sc, x))
                .map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("star partition (x = {x}) [mmap backend]"),
            ))
        }
        "t52" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem52(&sc, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.2 (a = {a}) [mmap backend]"),
            ))
        }
        "cd" | "t53" | "t54" | "c55" | "baseline" | "misra" | "random" | "greedy" => Err(format!(
            "algorithm `{name}` does not support --backend mmap yet (supported: star, t52)"
        )),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

fn dispatch(algo: &str, g: &Graph) -> Result<(EdgeColoring, Option<NetworkStats>, String), String> {
    let (name, params) = algo.split_once(':').unwrap_or((algo, ""));
    let kv = parse_kv(params)?;
    let cfg = SubroutineConfig::default();
    let err = |e: decolor_core::AlgoError| e.to_string();
    match name {
        "star" => {
            let x = opt_usize(&kv, "x", 1)?;
            let res = star_partition_edge_coloring(g, &StarPartitionParams::for_levels(g, x))
                .map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("star partition (x = {x})"),
            ))
        }
        "cd" => {
            let x = opt_usize(&kv, "x", 1)?;
            let (c, s) = cd_edge_coloring(g, &CdParams::for_levels(g.max_degree().max(2), x))
                .map_err(err)?;
            Ok((
                c,
                Some(s),
                format!("CD-Coloring of the line graph (x = {x})"),
            ))
        }
        "t52" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem52(g, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.2 (a = {a})"),
            ))
        }
        "t53" => {
            let a = opt_usize(&kv, "a", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem53(g, a, q, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.3 (a = {a})"),
            ))
        }
        "t54" => {
            let a = opt_usize(&kv, "a", 2)?;
            let x = opt_usize(&kv, "x", 2)?;
            let q = opt_f64(&kv, "q", 2.5)?;
            let res = theorem54(g, a, q, x, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Theorem 5.4 (a = {a}, x = {x})"),
            ))
        }
        "c55" => {
            let a = opt_usize(&kv, "a", 2)?;
            let (res, p) = corollary55(g, a, cfg).map_err(err)?;
            Ok((
                res.coloring,
                Some(res.stats),
                format!("Corollary 5.5 (a = {a}; chose x = {}, q = {:.1})", p.x, p.q),
            ))
        }
        "baseline" => {
            let (c, s) = two_delta_minus_one_edge_coloring(g).map_err(err)?;
            Ok((c, Some(s), "(2Δ−1) baseline".to_string()))
        }
        "misra" => Ok((
            misra_gries_edge_coloring(g),
            None,
            "Misra–Gries (Δ+1)".to_string(),
        )),
        "random" => {
            let seed = opt_usize(&kv, "seed", 0)? as u64;
            let delta = g.max_degree() as u64;
            let palette = (2 * delta).saturating_sub(1).max(1);
            let (c, s) = randomized_edge_coloring(g, palette, seed).map_err(err)?;
            Ok((c, Some(s), "randomized (2Δ−1), Luby-style".to_string()))
        }
        "greedy" => Ok((greedy_edge_coloring(g), None, "greedy (2Δ−1)".to_string())),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_dispatch_matches_ram() {
        let g = decolor_graph::generators::forest_union(60, 2, 6, 1).unwrap();
        for algo in ["star:x=1", "t52:a=2"] {
            let (ram, ram_stats, _) = dispatch(algo, &g).unwrap();
            let (mmap, mmap_stats, label) = dispatch_mmap(algo, &g).unwrap();
            assert_eq!(mmap.as_slice(), ram.as_slice(), "{algo} diverges");
            assert_eq!(mmap_stats, ram_stats, "{algo} ledger diverges");
            assert!(label.contains("mmap backend"));
        }
        let err = dispatch_mmap("misra", &g).unwrap_err();
        assert!(err.contains("does not support --backend mmap"), "{err}");
        assert!(dispatch_mmap("zzz", &g).unwrap_err().contains("unknown"));
    }

    #[test]
    fn dispatch_every_algorithm() {
        let g = decolor_graph::generators::forest_union(60, 2, 6, 1).unwrap();
        for algo in [
            "star:x=1",
            "star:x=2",
            "cd:x=1",
            "t52:a=2",
            "t53:a=2",
            "t54:a=2,x=2",
            "c55:a=2",
            "baseline",
            "misra",
            "greedy",
            "random:seed=1",
        ] {
            let result = dispatch(algo, &g);
            assert!(result.is_ok(), "{algo}: {}", result.unwrap_err());
            let (c, _, _) = result.unwrap();
            assert!(c.is_proper(&g), "{algo} produced improper coloring");
        }
        assert!(dispatch("zzz", &g).is_err());
    }
}

//! `decolor store build|verify` — build and audit on-disk sharded CSR
//! stores (see `decolor_graph::storage`).
//!
//! `build` streams a graph spec straight into a
//! [`ShardedCsrBuilder`](decolor_graph::storage::ShardedCsrBuilder)
//! (families with `*_stream` generators never materialize the edge list;
//! everything else builds in RAM first and spills). With
//! `--journal-every N` the build checkpoints its durable prefix every `N`
//! edges, and `--resume` continues an interrupted journaled build from
//! its last checkpoint — the finished store is byte-identical to an
//! uninterrupted one. `verify` re-reads every data file and checks its
//! manifest CRC32.

use decolor_graph::storage::{
    BuildOptions, ShardedCsr, ShardedCsrBuilder, DEFAULT_SHARD_BITS, FORMAT_VERSION,
};
use decolor_graph::{generators, EdgeSink, Graph, GraphError};

use crate::args::{opt_f64, opt_u64, parse_kv, req_usize, Parsed};
use crate::spec::build_graph;

/// Dispatches `store build` / `store verify`.
///
/// # Errors
///
/// Malformed arguments, spec failures, or storage-layer errors
/// (including [`GraphError::Corrupt`] for damaged stores).
pub fn run(parsed: &mut Parsed) -> Result<String, String> {
    match parsed.positional(0) {
        Some("build") => build(parsed),
        Some("verify") => verify(parsed),
        Some(other) => Err(format!(
            "unknown store action `{other}` (expected build or verify)"
        )),
        None => Err("store needs an action: build or verify".into()),
    }
}

/// The edge source for a build: a streaming generator when the family
/// has one, otherwise a RAM-built graph replayed edge by edge. Either
/// way the stream is deterministic, which is what lets `--resume`
/// replay-verify the journaled prefix.
enum Source {
    Grid { rows: usize, cols: usize },
    Gnp { n: usize, p: f64, seed: u64 },
    Regular { n: usize, d: usize, seed: u64 },
    Hypercube { dim: u32 },
    Ram(Box<Graph>),
}

impl Source {
    /// Parses a spec into a source plus its vertex count.
    fn parse(spec: &str) -> Result<(Source, usize), String> {
        let (family, params) = spec.split_once(':').unwrap_or((spec, ""));
        let kv = parse_kv(params).unwrap_or_default();
        match family {
            "grid" => {
                let rows = req_usize(&kv, "rows")?;
                let cols = req_usize(&kv, "cols")?;
                Ok((Source::Grid { rows, cols }, rows * cols))
            }
            "gnp" => {
                let n = req_usize(&kv, "n")?;
                let p = opt_f64(&kv, "p", 0.1)?;
                let seed = opt_u64(&kv, "seed", 0)?;
                Ok((Source::Gnp { n, p, seed }, n))
            }
            "regular" => {
                let n = req_usize(&kv, "n")?;
                let d = req_usize(&kv, "d")?;
                let seed = opt_u64(&kv, "seed", 0)?;
                Ok((Source::Regular { n, d, seed }, n))
            }
            "hypercube" => {
                let dim = u32::try_from(req_usize(&kv, "dim")?)
                    .ok()
                    .filter(|d| *d < 48)
                    .ok_or_else(|| "parameter `dim` is out of range".to_string())?;
                Ok((Source::Hypercube { dim }, 1usize << dim))
            }
            _ => {
                let g = build_graph(spec)?;
                let n = g.num_vertices();
                Ok((Source::Ram(Box::new(g)), n))
            }
        }
    }

    /// Emits the spec's full edge stream into `sink`.
    fn stream(&self, sink: &mut impl EdgeSink) -> Result<(), GraphError> {
        match self {
            Source::Grid { rows, cols } => generators::grid_stream(*rows, *cols, sink),
            Source::Gnp { n, p, seed } => generators::gnp_stream(*n, *p, *seed, sink),
            Source::Regular { n, d, seed } => {
                generators::random_regular_stream(*n, *d, *seed, sink)
            }
            Source::Hypercube { dim } => generators::hypercube_stream(*dim, sink),
            Source::Ram(g) => {
                for e in g.edges() {
                    let [u, v] = g.endpoints(e);
                    sink.add_edge(u.index(), v.index())?;
                }
                Ok(())
            }
        }
    }
}

fn build(parsed: &mut Parsed) -> Result<String, String> {
    let spec = parsed
        .positional(1)
        .ok_or("store build needs a graph spec")?
        .to_string();
    let dir = parsed
        .positional(2)
        .ok_or("store build needs a target directory")?
        .to_string();
    let shard_bits: u32 = match parsed.option("shard-bits") {
        None => DEFAULT_SHARD_BITS,
        Some(v) => v
            .parse()
            .map_err(|_| "--shard-bits must be an integer".to_string())?,
    };
    let journal_every: usize = match parsed.option("journal-every") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| "--journal-every must be an integer".to_string())?,
    };
    let resume = parsed.option("resume").is_some();

    let (source, n) = Source::parse(&spec)?;
    let mut note = String::new();
    let mut b = if resume {
        let b = ShardedCsrBuilder::resume(&dir).map_err(|e| e.to_string())?;
        if b.num_vertices() != n {
            return Err(format!(
                "journal in {dir} is for n = {} but spec `{spec}` has n = {n}",
                b.num_vertices()
            ));
        }
        note = format!(
            "resuming from durable prefix of {} edges\n",
            b.durable_edges()
        );
        b
    } else {
        ShardedCsrBuilder::with_options(
            &dir,
            n,
            BuildOptions {
                shard_bits,
                journal_every,
            },
        )
        .map_err(|e| e.to_string())?
    };
    source.stream(&mut b).map_err(|e| e.to_string())?;
    let sc = b.finish().map_err(|e| e.to_string())?;
    if parsed.option("verify").is_some() {
        sc.verify().map_err(|e| e.to_string())?;
        note.push_str("checksums verified\n");
    }
    Ok(format!("{note}built {dir} from {spec}\n{}", summary(&sc)))
}

fn verify(parsed: &mut Parsed) -> Result<String, String> {
    let dir = parsed
        .positional(1)
        .ok_or("store verify needs a store directory")?
        .to_string();
    let sc = ShardedCsr::open(&dir).map_err(|e| e.to_string())?;
    sc.verify().map_err(|e| e.to_string())?;
    Ok(format!(
        "store {dir} OK\nchecksums verified\n{}",
        summary(&sc)
    ))
}

/// One-line store summary from the validated manifest.
fn summary(sc: &ShardedCsr) -> String {
    let m = sc.manifest();
    format!(
        "n = {}, m = {}, Δ = {}, format v{FORMAT_VERSION}, 2^{} entries/shard, {} ep + {} adj shards\n",
        m.n,
        m.m,
        m.max_degree,
        m.shard_bits,
        m.ep.len(),
        m.adj.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn scratch(name: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("decolor-cli-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    #[test]
    fn build_and_verify_round_trip() {
        let dir = scratch("roundtrip");
        let mut p = parse(&argv(&format!(
            "store build grid:rows=8,cols=9 {dir} --shard-bits 5 --verify"
        )))
        .unwrap();
        let out = run(&mut p).unwrap();
        assert!(out.contains("n = 72"), "{out}");
        assert!(out.contains("checksums verified"), "{out}");
        let mut v = parse(&argv(&format!("store verify {dir}"))).unwrap();
        assert!(run(&mut v).unwrap().contains("OK"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_bit_rot() {
        let dir = scratch("bitrot");
        let mut p = parse(&argv(&format!(
            "store build gnp:n=200,p=0.05,seed=3 {dir} --shard-bits 6"
        )))
        .unwrap();
        run(&mut p).unwrap();
        // Flip one byte in a data shard: open() still succeeds (lengths
        // are fine) but verify() must report corruption.
        let shard = std::path::Path::new(&dir).join("ep.0");
        let mut bytes = std::fs::read(&shard).unwrap();
        bytes[3] ^= 0x40;
        std::fs::write(&shard, bytes).unwrap();
        let mut v = parse(&argv(&format!("store verify {dir}"))).unwrap();
        let err = run(&mut v).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_an_interrupted_journaled_build() {
        let dir = scratch("resume");
        // Journaled reference build.
        let reference = scratch("resume-ref");
        let mut p = parse(&argv(&format!(
            "store build grid:rows=20,cols=20 {reference} --shard-bits 5 --journal-every 64"
        )))
        .unwrap();
        run(&mut p).unwrap();
        // Interrupted build: stream only a prefix, then drop the builder
        // as a hard kill would (keeping its partial files).
        let (source, n) = Source::parse("grid:rows=20,cols=20").unwrap();
        let mut b = ShardedCsrBuilder::with_options(
            &dir,
            n,
            BuildOptions {
                shard_bits: 5,
                journal_every: 64,
            },
        )
        .unwrap();
        struct Prefix<'a>(&'a mut ShardedCsrBuilder, usize);
        impl EdgeSink for Prefix<'_> {
            fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
                if self.1 == 0 {
                    return Err(GraphError::Io {
                        reason: "simulated kill".into(),
                    });
                }
                self.1 -= 1;
                self.0.add_edge(u, v)
            }
            fn reset(&mut self) -> Result<(), GraphError> {
                self.0.reset()
            }
        }
        assert!(source.stream(&mut Prefix(&mut b, 300)).is_err());
        b.keep_partial_on_drop();
        drop(b);
        // Resume through the CLI and compare every file to the reference.
        let mut r = parse(&argv(&format!(
            "store build grid:rows=20,cols=20 {dir} --resume --verify"
        )))
        .unwrap();
        let out = run(&mut r).unwrap();
        assert!(out.contains("resuming from durable prefix"), "{out}");
        for file in ["manifest.bin", "offsets.bin", "ep.0", "adj.0"] {
            let a = std::fs::read(std::path::Path::new(&dir).join(file)).unwrap();
            let b = std::fs::read(std::path::Path::new(&reference).join(file)).unwrap();
            assert_eq!(a, b, "{file} diverges from the uninterrupted build");
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&reference).unwrap();
    }
}

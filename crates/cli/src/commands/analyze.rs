//! `decolor analyze <spec>`.

use decolor_graph::properties;

use crate::args::Parsed;
use crate::spec::build_graph;

/// Prints the structural parameters the paper's theorems key on.
///
/// # Errors
///
/// Malformed spec.
pub fn run(parsed: &mut Parsed) -> Result<String, String> {
    let spec = parsed
        .positional(0)
        .ok_or("analyze needs a graph spec")?
        .to_string();
    let g = build_graph(&spec)?;
    let stats = properties::degree_stats(&g);
    let degeneracy = properties::degeneracy_ordering(&g).degeneracy;
    let a_lo = properties::arboricity_lower_bound(&g);
    let lg_feasible = g.line_graph_edge_count() <= 2_000_000;
    let mut out = String::new();
    out.push_str(&format!("graph           {spec}\n"));
    out.push_str(&format!("vertices        {}\n", g.num_vertices()));
    out.push_str(&format!("edges           {}\n", g.num_edges()));
    out.push_str(&format!("Δ (max degree)  {}\n", stats.max));
    out.push_str(&format!(
        "min/mean degree {} / {:.2}\n",
        stats.min, stats.mean
    ));
    out.push_str(&format!("degeneracy      {degeneracy}\n"));
    out.push_str(&format!(
        "arboricity      in [{}, {}]\n",
        a_lo.max(1).min(degeneracy.max(1)),
        degeneracy.max(1)
    ));
    out.push_str(&format!(
        "connected       {}\n",
        properties::is_connected(&g)
    ));
    out.push_str(&format!("forest          {}\n", properties::is_forest(&g)));
    if lg_feasible {
        let lg = decolor_graph::line_graph::LineGraph::new(&g);
        out.push_str(&format!(
            "line graph      n = {}, Δ = {}, diversity = {}\n",
            lg.graph.num_vertices(),
            lg.graph.max_degree(),
            lg.cover.diversity()
        ));
    }
    // Paper guidance: which Section 5 regime applies.
    let delta = stats.max.max(1) as f64;
    let a = degeneracy.max(1) as f64;
    let hint = if a <= delta.powf(0.75) {
        "a = o(Δ)-ish: Theorems 5.2–5.4 give Δ + o(Δ) colors (try `color t52`)"
    } else {
        "arboricity close to Δ: use the star partition (try `color star:x=1`)"
    };
    out.push_str(&format!("hint            {hint}\n"));
    Ok(out)
}

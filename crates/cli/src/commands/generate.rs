//! `decolor generate <spec>`.

use crate::args::Parsed;
use crate::spec::build_graph;

/// Generates a graph and reports its headline numbers.
///
/// # Errors
///
/// Malformed spec or unwritable output paths.
pub fn run(parsed: &mut Parsed) -> Result<String, String> {
    let spec = parsed
        .positional(0)
        .ok_or("generate needs a graph spec")?
        .to_string();
    let g = build_graph(&spec)?;
    let mut out = format!(
        "generated {spec}: n = {}, m = {}, Δ = {}\n",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    out.push_str(&super::write_artifacts(parsed, &g, None)?);
    Ok(out)
}

//! The rule engine: scans [`Lexed`](crate::lexer::Lexed) code lines for
//! invariant violations, honoring `// lint: allow(<family>, "<reason>")`
//! annotations.
//!
//! Three rule families are enforced (see the README's "Static
//! guarantees" section):
//!
//! * **panic** — no `.unwrap()` / `.expect(…)` / `panic!` / `todo!` /
//!   `unimplemented!` / `unreachable!` in non-test library code.
//! * **unsafe** — every line containing the `unsafe` keyword must carry
//!   a `// SAFETY:` comment on the same line or within the preceding
//!   lines.
//! * **determinism** — no `std::thread::spawn`/`thread::scope` outside
//!   the vendored pool, no `env::var`, no `Instant::now`/`SystemTime`
//!   outside timing crates, and no default-hasher `HashMap`/`HashSet`
//!   in result-affecting crates (per-process randomized iteration order
//!   can silently break the bit-identical equivalence suites).
//!
//! An annotation applies to the next line that carries code (or to its
//! own line, for trailing comments), and must name the rule family and
//! give a non-empty reason.

use crate::lexer::Lexed;

/// How many lines above an `unsafe` keyword a `// SAFETY:` comment is
/// searched for (attributes or the end of a long argument list may sit
/// between the comment and the keyword).
const SAFETY_WINDOW: usize = 8;

/// One enforced rule. `family` groups rules for `allow` annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Panic-family call or macro in library code.
    Panic,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeSafety,
    /// `thread::spawn` / `thread::scope` outside the vendored pool.
    DetThread,
    /// `env::var` outside the vendored pool's `DECOLOR_THREADS` read.
    DetEnv,
    /// `Instant::now` / `SystemTime` outside timing crates.
    DetTime,
    /// Default-hasher `HashMap` / `HashSet` in result-affecting code.
    DetHasher,
    /// A malformed `// lint: allow(...)` annotation (missing reason).
    AllowSyntax,
}

impl Rule {
    /// The rule's diagnostic name, printed in brackets.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::DetThread => "det-thread",
            Rule::DetEnv => "det-env",
            Rule::DetTime => "det-time",
            Rule::DetHasher => "det-hasher",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// The annotation family that silences this rule.
    pub fn family(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::UnsafeSafety => "unsafe",
            Rule::DetThread | Rule::DetEnv | Rule::DetTime | Rule::DetHasher => "determinism",
            Rule::AllowSyntax => "allow-syntax",
        }
    }
}

/// Which rules apply to a file (decided per crate by
/// [`crate::config`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// Enforce the panic-freedom rule.
    pub panic: bool,
    /// Enforce `// SAFETY:` on `unsafe`.
    pub safety: bool,
    /// Forbid `thread::spawn` / `thread::scope`.
    pub thread: bool,
    /// Forbid `env::var`.
    pub env: bool,
    /// Forbid `Instant::now` / `SystemTime`.
    pub time: bool,
    /// Forbid default-hasher `HashMap` / `HashSet`.
    pub hasher: bool,
}

/// A single diagnostic: 1-based line, the violated rule, and a message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Positions in `line` where `name` appears as a full identifier.
fn ident_positions(line: &str, name: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let needle: Vec<char> = name.chars().collect();
    let mut out = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return out;
    }
    for i in 0..=chars.len() - needle.len() {
        if chars[i..i + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
        let after = chars.get(i + needle.len()).copied();
        let after_ok = !after.is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(i);
        }
    }
    out
}

/// `true` if the identifier at `pos` (of length `len`) is a method call:
/// preceded (modulo spaces) by `.` and followed (modulo spaces) by `(`.
fn is_method_call(line: &str, pos: usize, len: usize) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let mut i = pos;
    let mut dotted = false;
    while i > 0 {
        i -= 1;
        if chars[i] == ' ' {
            continue;
        }
        dotted = chars[i] == '.';
        break;
    }
    if !dotted {
        return false;
    }
    let mut j = pos + len;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    j < chars.len() && chars[j] == '('
}

/// `true` if the identifier at `pos` (of length `len`) is a macro
/// invocation: followed (modulo spaces) by `!`.
fn is_macro_call(line: &str, pos: usize, len: usize) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let mut j = pos + len;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    j < chars.len() && chars[j] == '!'
}

/// Parsed `// lint: allow(<family>, "<reason>")` annotation.
struct AllowDirective {
    family: String,
    has_reason: bool,
}

/// Extracts `lint: allow(...)` directives from one line's comment text.
fn parse_allows(comment: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:") {
        rest = &rest[at + "lint:".len()..];
        let trimmed = rest.trim_start();
        let Some(args) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let family: String = args
            .chars()
            .take_while(|c| is_ident_char(*c))
            .collect::<String>();
        rest = args;
        if family.is_empty() {
            // Prose mentioning `lint: allow(...)` or `allow(<family>`,
            // not a directive.
            continue;
        }
        let after = &args[family.len()..];
        let after = after.trim_start();
        let has_reason = after
            .strip_prefix(',')
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'))
            .is_some_and(|s| s.chars().take_while(|&c| c != '"').count() >= 3);
        out.push(AllowDirective { family, has_reason });
    }
    out
}

/// The lines allowed per family: `allows[line]` holds the families whose
/// rules are silenced on that (0-based) line.
fn collect_allows(lexed: &Lexed, violations: &mut Vec<Violation>) -> Vec<Vec<String>> {
    let n = lexed.code.len();
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); n];
    for (idx, comment) in lexed.comments.iter().enumerate() {
        if comment.is_empty() {
            continue;
        }
        for directive in parse_allows(comment) {
            let known = matches!(
                directive.family.as_str(),
                "panic" | "unsafe" | "determinism"
            );
            if !known {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::AllowSyntax,
                    message: format!(
                        "unknown `lint: allow` family `{}` (expected `panic`, `unsafe`, \
                         or `determinism`)",
                        directive.family
                    ),
                });
                continue;
            }
            if !directive.has_reason {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::AllowSyntax,
                    message: format!(
                        "`lint: allow({}, ...)` needs a non-empty quoted reason",
                        directive.family
                    ),
                });
                continue;
            }
            // A trailing annotation covers its own line; a standalone
            // comment line covers the next line that carries code.
            let mut target = idx;
            if lexed.code[idx].trim().is_empty() {
                let mut j = idx + 1;
                while j < n && lexed.code[j].trim().is_empty() {
                    j += 1;
                }
                if j == n {
                    continue;
                }
                target = j;
            }
            allows[target].push(directive.family);
        }
    }
    allows
}

fn allowed(allows: &[Vec<String>], line: usize, family: &str) -> bool {
    allows[line].iter().any(|f| f == family)
}

/// Runs `rules` over a lexed file, returning all violations in line
/// order.
pub fn lint_lexed(lexed: &Lexed, rules: &RuleSet) -> Vec<Violation> {
    let mut violations = Vec::new();
    let allows = collect_allows(lexed, &mut violations);

    for (idx, line) in lexed.code.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if rules.panic && !allowed(&allows, idx, "panic") {
            for method in ["unwrap", "expect"] {
                for pos in ident_positions(line, method) {
                    if is_method_call(line, pos, method.len()) {
                        violations.push(Violation {
                            line: idx + 1,
                            rule: Rule::Panic,
                            message: format!(
                                "`.{method}()` in library code; return a typed error or \
                                 annotate with `// lint: allow(panic, \"<invariant>\")`"
                            ),
                        });
                    }
                }
            }
            for mac in ["panic", "todo", "unimplemented", "unreachable"] {
                for pos in ident_positions(line, mac) {
                    if is_macro_call(line, pos, mac.len()) {
                        violations.push(Violation {
                            line: idx + 1,
                            rule: Rule::Panic,
                            message: format!(
                                "`{mac}!` in library code; return a typed error or \
                                 annotate with `// lint: allow(panic, \"<invariant>\")`"
                            ),
                        });
                    }
                }
            }
        }
        if rules.safety
            && !allowed(&allows, idx, "unsafe")
            && !ident_positions(line, "unsafe").is_empty()
        {
            let lo = idx.saturating_sub(SAFETY_WINDOW);
            let justified = (lo..=idx).any(|j| lexed.comments[j].contains("SAFETY:"));
            if !justified {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::UnsafeSafety,
                    message: "`unsafe` without a `// SAFETY:` comment on or above the line".into(),
                });
            }
        }
        if !allowed(&allows, idx, "determinism") {
            if rules.thread {
                for pat in ["thread::spawn", "thread::scope"] {
                    if line.contains(pat) {
                        violations.push(Violation {
                            line: idx + 1,
                            rule: Rule::DetThread,
                            message: format!(
                                "`{pat}` outside the vendored worker pool breaks the \
                                 `DECOLOR_THREADS` invariance contract"
                            ),
                        });
                    }
                }
            }
            if rules.env && line.contains("env::var") {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::DetEnv,
                    message: "`env::var` outside vendor/rayon's `DECOLOR_THREADS` read \
                              makes results depend on ambient environment"
                        .into(),
                });
            }
            if rules.time {
                if line.contains("Instant::now") {
                    violations.push(Violation {
                        line: idx + 1,
                        rule: Rule::DetTime,
                        message: "`Instant::now` outside bench/cli code".into(),
                    });
                }
                if !ident_positions(line, "SystemTime").is_empty() {
                    violations.push(Violation {
                        line: idx + 1,
                        rule: Rule::DetTime,
                        message: "`SystemTime` outside bench/cli code".into(),
                    });
                }
            }
            if rules.hasher {
                for ty in ["HashMap", "HashSet"] {
                    if !ident_positions(line, ty).is_empty() {
                        violations.push(Violation {
                            line: idx + 1,
                            rule: Rule::DetHasher,
                            message: format!(
                                "default-hasher `{ty}` in result-affecting code; use \
                                 `BTreeMap`/`BTreeSet` or a fixed-seed hasher, or \
                                 annotate a membership-only use"
                            ),
                        });
                    }
                }
            }
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// `true` when the scrubbed code contains a crate-level
/// `#![forbid(...)]` attribute listing `unsafe_code` (whitespace-
/// insensitive, tolerant of other lints in the same list).
pub fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    let despaced: String = lexed
        .code
        .iter()
        .flat_map(|l| l.chars())
        .filter(|c| !c.is_whitespace())
        .collect();
    let mut rest = despaced.as_str();
    while let Some(at) = rest.find("#![forbid(") {
        let list = &rest[at + "#![forbid(".len()..];
        let Some(end) = list.find(')') else {
            return false;
        };
        if list[..end].split(',').any(|lint| lint == "unsafe_code") {
            return true;
        }
        rest = &list[end..];
    }
    false
}

//! The rule engine: scans [`Lexed`](crate::lexer::Lexed) code lines and
//! the bracket-matched [`TokenStream`](crate::tokens::TokenStream) for
//! invariant violations, honoring `// lint: allow(<family>, "<reason>")`
//! annotations.
//!
//! Six rule families are enforced (see the README's "Static guarantees"
//! section for the scope table):
//!
//! * **panic** (`PANIC01`) — no `.unwrap()` / `.expect(…)` / `panic!` /
//!   `todo!` / `unimplemented!` / `unreachable!` in non-test library
//!   code.
//! * **unsafe** (`UNSAFE01`/`UNSAFE02`) — every `unsafe` must carry a
//!   `// SAFETY:` comment nearby, and the library crates must keep
//!   their `#![forbid(unsafe_code)]` attribute.
//! * **determinism** (`DET01`–`DET05`) — no ad-hoc threads, environment
//!   reads, clocks, default-hasher maps, or entropy-seeded RNG
//!   (`thread_rng` / `from_entropy`) in result-affecting code.
//! * **cast** (`CAST01`) — no raw `as` casts to numeric types in
//!   library code: a narrowing or sign-changing `as` silently truncates
//!   or wraps, which is exactly the bug class that corrupts a coloring
//!   without failing the conformance suites. Use `try_from` / `From` or
//!   the `decolor_graph::num` helpers.
//! * **arith** (`ARITH01`) — inside the storage/checkpoint scopes,
//!   `+` / `*` on byte-offset/length expressions must go through
//!   `checked_add` / `checked_mul` (or a pre-validated bound).
//! * **result** (`RES01`/`RES02`) — no `let _ = …` discards and no
//!   statement-level `.ok()` drops in library code: a swallowed fsync
//!   or journal-write error voids the crash-safety guarantees.
//!
//! An annotation applies to the next line that carries code (or to its
//! own line, for trailing comments), must name the rule family, and must
//! give a non-empty reason. An annotation that suppresses nothing is
//! itself a diagnostic (`ALLOW02`), so stale escape hatches cannot
//! accumulate silently.

use crate::lexer::Lexed;
use crate::tokens::{tokenize, TokenKind, TokenStream};

/// How many lines above an `unsafe` keyword a `// SAFETY:` comment is
/// searched for (attributes or the end of a long argument list may sit
/// between the comment and the keyword).
const SAFETY_WINDOW: usize = 8;

/// Bound on how many tokens an operand walk inspects on each side of an
/// arithmetic operator (keeps the pass linear on pathological lines).
const OPERAND_WINDOW: usize = 64;

/// The primitive numeric types a flagged `as` cast can target.
const NUMERIC_TYPES: [&str; 14] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
    "f64",
];

/// Identifier fragments marking an operand as a byte-offset/length
/// expression for the `ARITH01` rule (lower-cased substring match).
const OFFSET_MARKERS: [&str; 13] = [
    "offset", "len", "byte", "entr", "cursor", "slot", "stride", "word", "acc", "durable", "chunk",
    "base", "boundary",
];

/// One enforced rule. `family` groups rules for `allow` annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Panic-family call or macro in library code.
    Panic,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeSafety,
    /// A library crate lost its `#![forbid(unsafe_code)]` attribute.
    ForbidUnsafe,
    /// `thread::spawn` / `thread::scope` outside the vendored pool.
    DetThread,
    /// `env::var` outside the vendored pool's `DECOLOR_THREADS` read.
    DetEnv,
    /// `Instant::now` / `SystemTime` outside timing crates.
    DetTime,
    /// Default-hasher `HashMap` / `HashSet` in result-affecting code.
    DetHasher,
    /// Entropy-seeded RNG (`thread_rng` / `from_entropy`) in
    /// result-affecting code.
    DetEntropy,
    /// Raw `as` cast to a numeric type in library code.
    LossyCast,
    /// Unchecked `+` / `*` on a byte-offset/length expression in the
    /// storage/checkpoint scopes.
    OffsetArith,
    /// `let _ = …` discarding a value (and any error inside it).
    DiscardedResultLet,
    /// Statement-level `.ok();` dropping a `Result`.
    DiscardedResultOk,
    /// A malformed `// lint: allow(...)` annotation (unknown family or
    /// missing reason).
    AllowSyntax,
    /// A well-formed annotation that suppresses no violation.
    AllowUnused,
}

impl Rule {
    /// The rule's diagnostic name, printed in brackets.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::DetThread => "det-thread",
            Rule::DetEnv => "det-env",
            Rule::DetTime => "det-time",
            Rule::DetHasher => "det-hasher",
            Rule::DetEntropy => "det-entropy",
            Rule::LossyCast => "lossy-cast",
            Rule::OffsetArith => "unchecked-offset-arith",
            Rule::DiscardedResultLet => "discarded-result",
            Rule::DiscardedResultOk => "discarded-result-ok",
            Rule::AllowSyntax => "allow-syntax",
            Rule::AllowUnused => "allow-unused",
        }
    }

    /// The rule's stable identifier, printed in every diagnostic and
    /// accepted by `decolor-lint --explain`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "PANIC01",
            Rule::UnsafeSafety => "UNSAFE01",
            Rule::ForbidUnsafe => "UNSAFE02",
            Rule::DetThread => "DET01",
            Rule::DetEnv => "DET02",
            Rule::DetTime => "DET03",
            Rule::DetHasher => "DET04",
            Rule::DetEntropy => "DET05",
            Rule::LossyCast => "CAST01",
            Rule::OffsetArith => "ARITH01",
            Rule::DiscardedResultLet => "RES01",
            Rule::DiscardedResultOk => "RES02",
            Rule::AllowSyntax => "ALLOW01",
            Rule::AllowUnused => "ALLOW02",
        }
    }

    /// Every rule, in diagnostic-id order (for `--explain` lookups).
    pub fn all() -> [Rule; 14] {
        [
            Rule::Panic,
            Rule::UnsafeSafety,
            Rule::ForbidUnsafe,
            Rule::DetThread,
            Rule::DetEnv,
            Rule::DetTime,
            Rule::DetHasher,
            Rule::DetEntropy,
            Rule::LossyCast,
            Rule::OffsetArith,
            Rule::DiscardedResultLet,
            Rule::DiscardedResultOk,
            Rule::AllowSyntax,
            Rule::AllowUnused,
        ]
    }

    /// The annotation family that silences this rule.
    pub fn family(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::UnsafeSafety | Rule::ForbidUnsafe => "unsafe",
            Rule::DetThread | Rule::DetEnv | Rule::DetTime | Rule::DetHasher | Rule::DetEntropy => {
                "determinism"
            }
            Rule::LossyCast => "cast",
            Rule::OffsetArith => "arith",
            Rule::DiscardedResultLet | Rule::DiscardedResultOk => "result",
            Rule::AllowSyntax | Rule::AllowUnused => "allow-syntax",
        }
    }

    /// One paragraph per rule: the invariant, why it matters, how to
    /// fix a violation, and the escape hatch. Printed by
    /// `decolor-lint --explain <RULE_ID>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Panic => {
                "PANIC01 panic: library code must not contain `.unwrap()`, `.expect(...)`, \
                 `panic!`, `todo!`, `unimplemented!`, or `unreachable!`. The pipelines return \
                 typed errors (`GraphError`, `RuntimeError`, `AlgoError`) so a malformed input \
                 or corrupt store surfaces as a value the caller can handle, never as a crash \
                 mid-experiment. Fix: return a typed error and propagate with `?`. Escape \
                 hatch: `// lint: allow(panic, \"<invariant that makes this unreachable>\")` \
                 for cases a checked invariant already excludes."
            }
            Rule::UnsafeSafety => {
                "UNSAFE01 unsafe-safety: every `unsafe` keyword needs a `// SAFETY:` comment \
                 on the same line or within the preceding 8 lines stating the invariant that \
                 makes the operation sound. Unsafe code is confined to vendored shims; an \
                 unexplained `unsafe` cannot be audited. Fix: write the SAFETY argument or \
                 remove the unsafe block. Escape hatch: \
                 `// lint: allow(unsafe, \"<reason>\")` (prefer a real SAFETY comment)."
            }
            Rule::ForbidUnsafe => {
                "UNSAFE02 forbid-unsafe: the library crates (graph, runtime, core, baselines, \
                 bench) must keep their crate-level `#![forbid(unsafe_code)]` attribute, so \
                 all unsafe stays inside the audited vendor shims. Fix: restore the attribute; \
                 there is no escape hatch."
            }
            Rule::DetThread => {
                "DET01 det-thread: `thread::spawn` / `thread::scope` outside vendor/rayon \
                 breaks the `DECOLOR_THREADS` invariance contract — results must be \
                 bit-identical at any pool width. Fix: fan out through the vendored pool. \
                 Escape hatch: `// lint: allow(determinism, \"<reason>\")`."
            }
            Rule::DetEnv => {
                "DET02 det-env: `env::var` outside vendor/rayon's `DECOLOR_THREADS` read \
                 makes results depend on ambient environment, which the equivalence suites \
                 cannot see. Fix: thread configuration through explicit parameters. Escape \
                 hatch: `// lint: allow(determinism, \"<reason>\")`."
            }
            Rule::DetTime => {
                "DET03 det-time: `Instant::now` / `SystemTime` outside bench/cli/criterion \
                 puts wall-clock values into result-affecting code. Fix: measure time only in \
                 the timing layers. Escape hatch: `// lint: allow(determinism, \"<reason>\")`."
            }
            Rule::DetHasher => {
                "DET04 det-hasher: default-hasher `HashMap` / `HashSet` iterate in a \
                 per-process random order, so any result derived from iteration silently \
                 depends on the hasher seed (the PR 6 `barabasi_albert` bug). Fix: use \
                 `BTreeMap` / `BTreeSet`, or annotate a membership-only use with \
                 `// lint: allow(determinism, \"<why iteration order cannot leak>\")`."
            }
            Rule::DetEntropy => {
                "DET05 det-entropy: entropy-seeded RNG (`thread_rng`, `from_entropy`) in \
                 result-affecting code makes runs unreproducible even with a fixed input \
                 seed — the same bug class as the hasher rule. Fix: construct RNGs with \
                 `SeedableRng::seed_from_u64` (or equivalent) from the experiment \
                 configuration. Escape hatch: `// lint: allow(determinism, \"<reason>\")`."
            }
            Rule::LossyCast => {
                "CAST01 lossy-cast: raw `as` casts to numeric types are forbidden in library \
                 code because a narrowing or sign-changing `as` (`u64 as usize`, `usize as \
                 u32`, `i64 as u64`, float↔int) silently truncates or wraps — at n = 10^8 the \
                 byte-offset arithmetic overflows 32 bits, and a truncated index corrupts a \
                 coloring without failing the bounds suites. Fix: use `From` / `TryFrom` or \
                 the `decolor_graph::num` helpers (`to_usize`, `to_u32`, `to_u64`, \
                 `byte_offset`), which return a typed `GraphError::Overflow`. Escape hatch: \
                 `// lint: allow(cast, \"<the bound that makes the cast lossless>\")` — for \
                 example inside a hot loop over values validated at store-open time."
            }
            Rule::OffsetArith => {
                "ARITH01 unchecked-offset-arith: inside graph/src/storage/ and \
                 core/src/checkpoint.rs, `+` / `*` (and `+=` / `*=`) on byte-offset or \
                 length expressions must go through `checked_add` / `checked_mul`: an \
                 overflowing offset multiply wraps in release builds and misreads a \
                 \"verified\" store. Fix: checked arithmetic with a typed \
                 `GraphError::Overflow`, or validate a bound once at open/build time. Escape \
                 hatch: `// lint: allow(arith, \"<the validated bound>\")`."
            }
            Rule::DiscardedResultLet => {
                "RES01 discarded-result: `let _ = …` in library code discards a value and \
                 any `Result` inside it — a swallowed fsync/msync/journal-write error turns \
                 a durability guarantee into a silent lie. Fix: propagate with `?` or handle \
                 the error. Escape hatch: `// lint: allow(result, \"<why best-effort is \
                 sound here>\")` — for example cleanup in a destructor."
            }
            Rule::DiscardedResultOk => {
                "RES02 discarded-result-ok: a statement-level `.ok();` converts a `Result` \
                 to an `Option` and immediately drops it, silencing the error path. Fix: \
                 propagate with `?` or match on the error. Escape hatch: \
                 `// lint: allow(result, \"<why the error is ignorable>\")`."
            }
            Rule::AllowSyntax => {
                "ALLOW01 allow-syntax: a `// lint: allow(<family>, \"<reason>\")` annotation \
                 must name a known family (panic, unsafe, determinism, cast, arith, result) \
                 and give a non-empty quoted reason; a reasonless allow is an unreviewable \
                 suppression. Fix: state the invariant that justifies the exception."
            }
            Rule::AllowUnused => {
                "ALLOW02 allow-unused: a well-formed `// lint: allow(...)` annotation whose \
                 guarded line no longer violates the named family is stale and must be \
                 removed — dead escape hatches hide real regressions behind them. Fix: \
                 delete the annotation (or move it back next to the code it justifies)."
            }
        }
    }

    /// The rule with the given stable id, if any (for `--explain`).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.id() == id)
    }
}

/// Which rules apply to a file (decided per crate by
/// [`crate::config`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// Enforce the panic-freedom rule.
    pub panic: bool,
    /// Enforce `// SAFETY:` on `unsafe`.
    pub safety: bool,
    /// Forbid `thread::spawn` / `thread::scope`.
    pub thread: bool,
    /// Forbid `env::var`.
    pub env: bool,
    /// Forbid `Instant::now` / `SystemTime`.
    pub time: bool,
    /// Forbid default-hasher `HashMap` / `HashSet`.
    pub hasher: bool,
    /// Forbid entropy-seeded RNG (`thread_rng` / `from_entropy`).
    pub entropy: bool,
    /// Forbid raw `as` casts to numeric types.
    pub cast: bool,
    /// Require checked arithmetic on offset/length expressions.
    pub arith: bool,
    /// Forbid `let _ = …` / statement-level `.ok()` discards.
    pub result: bool,
}

/// A single diagnostic: 1-based line, the violated rule, and a message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Positions in `line` where `name` appears as a full identifier.
fn ident_positions(line: &str, name: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let needle: Vec<char> = name.chars().collect();
    let mut out = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return out;
    }
    for i in 0..=chars.len() - needle.len() {
        if chars[i..i + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
        let after = chars.get(i + needle.len()).copied();
        let after_ok = !after.is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(i);
        }
    }
    out
}

/// `true` if the identifier at `pos` (of length `len`) is a method call:
/// preceded (modulo spaces) by `.` and followed (modulo spaces) by `(`.
fn is_method_call(line: &str, pos: usize, len: usize) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let mut i = pos;
    let mut dotted = false;
    while i > 0 {
        i -= 1;
        if chars[i] == ' ' {
            continue;
        }
        dotted = chars[i] == '.';
        break;
    }
    if !dotted {
        return false;
    }
    let mut j = pos + len;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    j < chars.len() && chars[j] == '('
}

/// `true` if the identifier at `pos` (of length `len`) is a macro
/// invocation: followed (modulo spaces) by `!`.
fn is_macro_call(line: &str, pos: usize, len: usize) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let mut j = pos + len;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    j < chars.len() && chars[j] == '!'
}

/// The annotation families an allow directive may name.
const KNOWN_FAMILIES: [&str; 6] = ["panic", "unsafe", "determinism", "cast", "arith", "result"];

/// Parsed `// lint: allow(<family>, "<reason>")` annotation.
struct AllowDirective {
    family: String,
    has_reason: bool,
}

/// A well-formed allow bound to the code line it guards.
struct AllowSite {
    /// 0-based line of the annotation comment (where `ALLOW02` reports).
    annotation_line: usize,
    /// 0-based line of the code the annotation covers.
    target: usize,
    /// The family it silences.
    family: String,
}

/// Extracts `lint: allow(...)` directives from one line's comment text.
fn parse_allows(comment: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:") {
        rest = &rest[at + "lint:".len()..];
        let trimmed = rest.trim_start();
        let Some(args) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let family: String = args
            .chars()
            .take_while(|c| is_ident_char(*c))
            .collect::<String>();
        rest = args;
        if family.is_empty() {
            // Prose mentioning `lint: allow(...)` or `allow(<family>`,
            // not a directive.
            continue;
        }
        let after = &args[family.len()..];
        let after = after.trim_start();
        let has_reason = after
            .strip_prefix(',')
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('"'))
            .is_some_and(|s| s.chars().take_while(|&c| c != '"').count() >= 3);
        out.push(AllowDirective { family, has_reason });
    }
    out
}

/// Collects well-formed allow sites, reporting malformed directives as
/// `ALLOW01` violations.
fn collect_allows(lexed: &Lexed, violations: &mut Vec<Violation>) -> Vec<AllowSite> {
    let n = lexed.code.len();
    let mut sites = Vec::new();
    for (idx, comment) in lexed.comments.iter().enumerate() {
        if comment.is_empty() {
            continue;
        }
        for directive in parse_allows(comment) {
            let known = KNOWN_FAMILIES.contains(&directive.family.as_str());
            if !known {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::AllowSyntax,
                    message: format!(
                        "unknown `lint: allow` family `{}` (expected one of: {})",
                        directive.family,
                        KNOWN_FAMILIES.join(", ")
                    ),
                });
                continue;
            }
            if !directive.has_reason {
                violations.push(Violation {
                    line: idx + 1,
                    rule: Rule::AllowSyntax,
                    message: format!(
                        "`lint: allow({}, ...)` needs a non-empty quoted reason",
                        directive.family
                    ),
                });
                continue;
            }
            // A trailing annotation covers its own line; a standalone
            // comment line covers the next line that carries code.
            let mut target = idx;
            if lexed.code[idx].trim().is_empty() {
                let mut j = idx + 1;
                while j < n && lexed.code[j].trim().is_empty() {
                    j += 1;
                }
                if j == n {
                    continue;
                }
                target = j;
            }
            sites.push(AllowSite {
                annotation_line: idx,
                target,
                family: directive.family,
            });
        }
    }
    sites
}

/// `true` when the rule set enables at least one rule of `family` (an
/// allow for a disabled family is dormant, not stale).
fn family_enabled(rules: &RuleSet, family: &str) -> bool {
    match family {
        "panic" => rules.panic,
        "unsafe" => rules.safety,
        "determinism" => rules.thread || rules.env || rules.time || rules.hasher || rules.entropy,
        "cast" => rules.cast,
        "arith" => rules.arith,
        "result" => rules.result,
        _ => false,
    }
}

// ------------------------------------------------------ line-based rules --

/// Pushes the per-line (pattern-shaped) candidates for one code line.
fn line_candidates(idx: usize, line: &str, rules: &RuleSet, out: &mut Vec<Violation>) {
    if rules.panic {
        for method in ["unwrap", "expect"] {
            for pos in ident_positions(line, method) {
                if is_method_call(line, pos, method.len()) {
                    out.push(Violation {
                        line: idx + 1,
                        rule: Rule::Panic,
                        message: format!(
                            "`.{method}()` in library code; return a typed error or \
                             annotate with `// lint: allow(panic, \"<invariant>\")`"
                        ),
                    });
                }
            }
        }
        for mac in ["panic", "todo", "unimplemented", "unreachable"] {
            for pos in ident_positions(line, mac) {
                if is_macro_call(line, pos, mac.len()) {
                    out.push(Violation {
                        line: idx + 1,
                        rule: Rule::Panic,
                        message: format!(
                            "`{mac}!` in library code; return a typed error or \
                             annotate with `// lint: allow(panic, \"<invariant>\")`"
                        ),
                    });
                }
            }
        }
    }
    if rules.thread {
        for pat in ["thread::spawn", "thread::scope"] {
            if line.contains(pat) {
                out.push(Violation {
                    line: idx + 1,
                    rule: Rule::DetThread,
                    message: format!(
                        "`{pat}` outside the vendored worker pool breaks the \
                         `DECOLOR_THREADS` invariance contract"
                    ),
                });
            }
        }
    }
    if rules.env && line.contains("env::var") {
        out.push(Violation {
            line: idx + 1,
            rule: Rule::DetEnv,
            message: "`env::var` outside vendor/rayon's `DECOLOR_THREADS` read \
                      makes results depend on ambient environment"
                .into(),
        });
    }
    if rules.time {
        if line.contains("Instant::now") {
            out.push(Violation {
                line: idx + 1,
                rule: Rule::DetTime,
                message: "`Instant::now` outside bench/cli code".into(),
            });
        }
        if !ident_positions(line, "SystemTime").is_empty() {
            out.push(Violation {
                line: idx + 1,
                rule: Rule::DetTime,
                message: "`SystemTime` outside bench/cli code".into(),
            });
        }
    }
    if rules.hasher {
        for ty in ["HashMap", "HashSet"] {
            if !ident_positions(line, ty).is_empty() {
                out.push(Violation {
                    line: idx + 1,
                    rule: Rule::DetHasher,
                    message: format!(
                        "default-hasher `{ty}` in result-affecting code; use \
                         `BTreeMap`/`BTreeSet` or a fixed-seed hasher, or \
                         annotate a membership-only use"
                    ),
                });
            }
        }
    }
    if rules.entropy {
        for f in ["thread_rng", "from_entropy"] {
            if !ident_positions(line, f).is_empty() {
                out.push(Violation {
                    line: idx + 1,
                    rule: Rule::DetEntropy,
                    message: format!(
                        "`{f}` seeds an RNG from process entropy, making results \
                         unreproducible; seed explicitly from the experiment \
                         configuration"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------- token-based rules --

/// Rust keywords that terminate an operand walk (they cannot be part of
/// a value expression the arithmetic consumes).
fn is_operand_boundary_keyword(name: &str) -> bool {
    matches!(
        name,
        "let"
            | "return"
            | "if"
            | "else"
            | "while"
            | "for"
            | "in"
            | "match"
            | "fn"
            | "pub"
            | "const"
            | "static"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "dyn"
    )
}

/// `true` when the `*` / `+` at token `i` is a binary operator: the
/// previous token must end an operand (identifier, literal, or a
/// closing bracket). Rules out derefs (`*x`), generic bounds after `:`,
/// and unary contexts.
fn is_binary_operator(ts: &TokenStream, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| ts.get(j)) else {
        return false;
    };
    match prev.kind {
        TokenKind::Ident => !is_operand_boundary_keyword(&prev.text) && prev.text != "as",
        TokenKind::Number => true,
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
    }
}

/// Collects the identifier names of the operand to the **left** of the
/// operator at `op`, walking through `.` / `::` chains and into bracket
/// groups, stopping at any other operator or delimiter.
fn left_operand_idents(ts: &TokenStream, op: usize, out: &mut Vec<String>) {
    let mut i = op;
    let mut steps = 0;
    while i > 0 && steps < OPERAND_WINDOW {
        i -= 1;
        steps += 1;
        let t = &ts.tokens[i];
        match t.kind {
            TokenKind::Ident => {
                if is_operand_boundary_keyword(&t.text) {
                    return;
                }
                out.push(t.text.clone());
            }
            TokenKind::Number => {}
            TokenKind::Punct => match t.text.as_str() {
                ")" | "]" => {
                    let Some(open) = ts.matching[i] else { return };
                    for k in open..i {
                        if ts.tokens[k].kind == TokenKind::Ident {
                            out.push(ts.tokens[k].text.clone());
                        }
                    }
                    i = open;
                }
                "." | "::" => {}
                _ => return,
            },
        }
    }
}

/// Collects the identifier names of the operand to the **right** of the
/// operator at `op` (symmetric to [`left_operand_idents`]).
fn right_operand_idents(ts: &TokenStream, op: usize, out: &mut Vec<String>) {
    let mut i = op + 1;
    let mut steps = 0;
    // A leading `&` / `*` / `-` prefix is part of the operand.
    while ts
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && matches!(t.text.as_str(), "&" | "*" | "-"))
    {
        i += 1;
    }
    while i < ts.tokens.len() && steps < OPERAND_WINDOW {
        let t = &ts.tokens[i];
        steps += 1;
        match t.kind {
            TokenKind::Ident => {
                if is_operand_boundary_keyword(&t.text) {
                    return;
                }
                out.push(t.text.clone());
            }
            TokenKind::Number => {}
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => {
                    let Some(close) = ts.matching[i] else { return };
                    for k in i + 1..close {
                        if ts.tokens[k].kind == TokenKind::Ident {
                            out.push(ts.tokens[k].text.clone());
                        }
                    }
                    i = close;
                }
                "." | "::" => {}
                _ => return,
            },
        }
        i += 1;
    }
}

/// `true` when any collected operand identifier marks a byte-offset or
/// length expression. Primitive type names are skipped (`usize` would
/// otherwise match the `size` marker in every `x as usize` operand).
fn mentions_offset_marker(idents: &[String]) -> bool {
    idents.iter().any(|name| {
        if NUMERIC_TYPES.contains(&name.as_str()) {
            return false;
        }
        let lower = name.to_lowercase();
        OFFSET_MARKERS.iter().any(|m| lower.contains(m))
    })
}

/// `true` when exactly one immediate neighbor of the operator at `op`
/// is the byte-stride literal `8` (storage entries are 8-byte packed
/// words, so `x * 8` is byte arithmetic even when `x` carries no marker
/// name). Two numeric neighbors — `9 * 8` — are a compile-time
/// constant, not runtime offset arithmetic.
fn has_stride_literal(ts: &TokenStream, op: usize) -> bool {
    let prev = op.checked_sub(1).and_then(|j| ts.get(j));
    let next = ts.get(op + 1);
    let is_eight = |t: Option<&crate::tokens::Token>| {
        t.is_some_and(|t| t.kind == TokenKind::Number && t.text == "8")
    };
    let is_number =
        |t: Option<&crate::tokens::Token>| t.is_some_and(|t| t.kind == TokenKind::Number);
    (is_eight(prev) || is_eight(next)) && !(is_number(prev) && is_number(next))
}

/// Pushes the expression-shaped candidates (cast / arith / result) from
/// the token stream.
fn token_candidates(ts: &TokenStream, rules: &RuleSet, out: &mut Vec<Violation>) {
    let n = ts.tokens.len();
    for i in 0..n {
        let t = &ts.tokens[i];
        if rules.cast && t.kind == TokenKind::Ident && t.text == "as" {
            if let Some(ty) = ts.get(i + 1) {
                if ty.kind == TokenKind::Ident && NUMERIC_TYPES.contains(&ty.text.as_str()) {
                    out.push(Violation {
                        line: t.line + 1,
                        rule: Rule::LossyCast,
                        message: format!(
                            "raw `as {}` cast in library code; use `From`/`TryFrom` or the \
                             `decolor_graph::num` helpers, or annotate with \
                             `// lint: allow(cast, \"<lossless bound>\")`",
                            ty.text
                        ),
                    });
                }
            }
        }
        if rules.arith && t.kind == TokenKind::Punct {
            let (op_text, compound) = match t.text.as_str() {
                "+" | "*" => (t.text.as_str(), false),
                "+=" | "*=" => (t.text.as_str(), true),
                _ => continue,
            };
            if !compound && !is_binary_operator(ts, i) {
                continue;
            }
            let mut idents = Vec::new();
            left_operand_idents(ts, i, &mut idents);
            right_operand_idents(ts, i, &mut idents);
            let is_mul = op_text.starts_with('*');
            if mentions_offset_marker(&idents) || (is_mul && has_stride_literal(ts, i)) {
                out.push(Violation {
                    line: t.line + 1,
                    rule: Rule::OffsetArith,
                    message: format!(
                        "unchecked `{op_text}` on an offset/length expression; use \
                         `checked_add`/`checked_mul` with a typed overflow error, or \
                         annotate a validated bound with \
                         `// lint: allow(arith, \"<bound>\")`"
                    ),
                });
            }
        }
        if rules.result && t.kind == TokenKind::Ident && t.text == "let" && ts.is_ident(i + 1, "_")
        {
            // `let _ = …` or `let _: T = …`, but not `let _x` (a named
            // discard keeps the value alive) or tuple patterns.
            if ts.is_punct(i + 2, "=") || ts.is_punct(i + 2, ":") {
                out.push(Violation {
                    line: t.line + 1,
                    rule: Rule::DiscardedResultLet,
                    message: "`let _ = …` discards the value (and any `Result` in it); \
                              propagate with `?` or annotate with \
                              `// lint: allow(result, \"<why best-effort is sound>\")`"
                        .into(),
                });
            }
        }
        if rules.result
            && t.kind == TokenKind::Punct
            && t.text == "."
            && ts.is_ident(i + 1, "ok")
            && ts.is_punct(i + 2, "(")
            && ts.is_punct(i + 3, ")")
            && ts.is_punct(i + 4, ";")
        {
            out.push(Violation {
                line: ts.tokens[i + 1].line + 1,
                rule: Rule::DiscardedResultOk,
                message: "statement-level `.ok();` drops the `Result` and silences its \
                          error; propagate with `?` or annotate with \
                          `// lint: allow(result, \"<why the error is ignorable>\")`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------- engine --

/// Runs `rules` over a lexed file, returning all violations in line
/// order. Candidates suppressed by a matching allow mark that allow as
/// used; allows that suppress nothing become `ALLOW02` diagnostics.
pub fn lint_lexed(lexed: &Lexed, rules: &RuleSet) -> Vec<Violation> {
    let mut violations = Vec::new();
    let allows = collect_allows(lexed, &mut violations);
    let mut used = vec![false; allows.len()];

    let mut candidates = Vec::new();
    for (idx, line) in lexed.code.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // The unsafe rule needs the comments context, so it stays here
        // rather than in `line_candidates`.
        if rules.safety && !ident_positions(line, "unsafe").is_empty() {
            let lo = idx.saturating_sub(SAFETY_WINDOW);
            let justified = (lo..=idx).any(|j| lexed.comments[j].contains("SAFETY:"));
            if !justified {
                candidates.push(Violation {
                    line: idx + 1,
                    rule: Rule::UnsafeSafety,
                    message: "`unsafe` without a `// SAFETY:` comment on or above the line".into(),
                });
            }
        }
        line_candidates(idx, line, rules, &mut candidates);
    }
    token_candidates(&tokenize(&lexed.code), rules, &mut candidates);

    for candidate in candidates {
        let mut suppressed = false;
        for (i, site) in allows.iter().enumerate() {
            if site.target + 1 == candidate.line && site.family == candidate.rule.family() {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            violations.push(candidate);
        }
    }
    for (i, site) in allows.iter().enumerate() {
        if !used[i] && family_enabled(rules, &site.family) {
            violations.push(Violation {
                line: site.annotation_line + 1,
                rule: Rule::AllowUnused,
                message: format!(
                    "`lint: allow({}, ...)` suppresses nothing (line {} no longer \
                     violates the `{}` family); remove the stale annotation",
                    site.family,
                    site.target + 1,
                    site.family
                ),
            });
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// `true` when the scrubbed code contains a crate-level
/// `#![forbid(...)]` attribute listing `unsafe_code` (whitespace-
/// insensitive, tolerant of other lints in the same list).
pub fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    let despaced: String = lexed
        .code
        .iter()
        .flat_map(|l| l.chars())
        .filter(|c| !c.is_whitespace())
        .collect();
    let mut rest = despaced.as_str();
    while let Some(at) = rest.find("#![forbid(") {
        let list = &rest[at + "#![forbid(".len()..];
        let Some(end) = list.find(')') else {
            return false;
        };
        if list[..end].split(',').any(|lint| lint == "unsafe_code") {
            return true;
        }
        rest = &list[end..];
    }
    false
}

//! A bracket-matched token stream over [`Lexed`](crate::lexer::Lexed)
//! code.
//!
//! The line-based rules of PR 6 cannot see *expressions*: a cast split
//! as `usize::try_from(x)\n    .unwrap_or(0) as u32` or a multi-line
//! call chain defeats any per-line pattern. This module re-tokenizes the
//! scrubbed code (comments, literals, and `#[cfg(test)]` items are
//! already blanked by the lexer, so nothing here can fire on prose) into
//! a flat stream of identifier / number / punctuation tokens, each
//! carrying its original line and column, plus a bracket-match table so
//! rules can jump across `(…)` / `[…]` / `{…}` groups when walking an
//! operand.
//!
//! The expression-aware rule families — lossy casts, unchecked offset
//! arithmetic, discarded `Result`s — are built on this stream; see
//! [`crate::rules`].

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`offset`, `as`, `let`, `usize`, ...).
    Ident,
    /// A numeric literal (`0`, `8`, `0x4443`, `1.5`, `1u64`, ...).
    Number,
    /// Punctuation, with multi-character operators (`+=`, `::`, `..`)
    /// kept as one token.
    Punct,
}

/// One token of scrubbed code, anchored to its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// The token text (identifier name, literal text, or operator).
    pub text: String,
    /// 0-based source line (columns are preserved by the lexer, so this
    /// matches the original file).
    pub line: usize,
    /// 0-based character column on that line.
    pub col: usize,
}

/// A token stream with a bracket-match table.
#[derive(Debug)]
pub struct TokenStream {
    /// The tokens, in source order.
    pub tokens: Vec<Token>,
    /// `matching[i]` is the index of the bracket matching token `i`
    /// (open → close and close → open), or `None` for non-bracket
    /// tokens and unbalanced brackets.
    pub matching: Vec<Option<usize>>,
}

/// Multi-character operators kept as single tokens, longest first so the
/// greedy scan picks `<<=` over `<<` over `<`.
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes scrubbed code lines (from [`crate::lexer::lex`]) into a
/// bracket-matched stream.
pub fn tokenize(code: &[String]) -> TokenStream {
    let mut tokens = Vec::new();
    for (line_no, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let n = chars.len();
        let mut i = 0;
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_start(c) {
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < n
                    && (is_ident_continue(chars[i])
                        // A dot continues the literal only for a float
                        // like `1.5`; `0..n` stays three tokens.
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                            && !chars[start..i].contains(&'.')))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
                continue;
            }
            // Punctuation: greedy multi-char match first.
            let rest: String = chars[i..n.min(i + 3)].iter().collect();
            let multi = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op));
            let text = multi.map_or_else(|| c.to_string(), |op| (*op).to_string());
            let len = text.chars().count();
            tokens.push(Token {
                kind: TokenKind::Punct,
                text,
                line: line_no,
                col: i,
            });
            i += len;
        }
    }
    let matching = match_brackets(&tokens);
    TokenStream { tokens, matching }
}

/// Builds the bracket-match table over `(`/`)`, `[`/`]`, `{`/`}`.
fn match_brackets(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut matching = vec![None; tokens.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => {
                let open = t.text.chars().next().unwrap_or('(');
                stack.push((i, open));
            }
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                // Tolerate imbalance (macro fragments): pop only a true
                // partner, leave strays unmatched.
                if stack.last().is_some_and(|&(_, open)| open == want) {
                    if let Some((j, _)) = stack.pop() {
                        matching[i] = Some(j);
                        matching[j] = Some(i);
                    }
                }
            }
            _ => {}
        }
    }
    matching
}

impl TokenStream {
    /// The token at `i`, if any.
    pub fn get(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// `true` when token `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    /// `true` when token `i` is the punctuation `op`.
    pub fn is_punct(&self, i: usize, op: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn stream(src: &str) -> TokenStream {
        tokenize(&lex(src).code)
    }

    fn texts(ts: &TokenStream) -> Vec<&str> {
        ts.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let ts = stream("let x = off * 8 + 1;\n");
        assert_eq!(
            texts(&ts),
            vec!["let", "x", "=", "off", "*", "8", "+", "1", ";"]
        );
        assert_eq!(ts.tokens[3].line, 0);
        assert_eq!(ts.tokens[3].col, 8);
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let ts = stream("a += b; c <<= 2; x..y; p::q(r ..= s)\n");
        let t = texts(&ts);
        assert!(t.contains(&"+="));
        assert!(t.contains(&"<<="));
        assert!(t.contains(&".."));
        assert!(t.contains(&"::"));
        assert!(t.contains(&"..="));
    }

    #[test]
    fn ranges_are_not_floats() {
        let ts = stream("for i in 0..n { f(1.5); }\n");
        let t = texts(&ts);
        assert!(t.contains(&"0"));
        assert!(t.contains(&".."));
        assert!(t.contains(&"1.5"));
    }

    #[test]
    fn brackets_match_across_lines() {
        let ts = stream("f(a,\n   g[b],\n) + h;\n");
        let open = ts
            .tokens
            .iter()
            .position(|t| t.text == "(")
            .unwrap_or_else(|| panic!("no open paren"));
        let close = ts.matching[open].unwrap_or_else(|| panic!("unmatched paren"));
        assert_eq!(ts.tokens[close].text, ")");
        assert_eq!(ts.tokens[close].line, 2);
        assert_eq!(ts.matching[close], Some(open));
    }

    #[test]
    fn scrubbed_text_yields_no_tokens() {
        let ts = stream("// off * 8\nlet s = \"a + b\";\n");
        let t = texts(&ts);
        assert!(!t.contains(&"+"));
        assert!(!t.contains(&"*"));
        assert_eq!(t, vec!["let", "s", "=", ";"]);
    }

    #[test]
    fn columns_survive_scrubbing() {
        // The string contents are blanked but every following token must
        // keep its original column.
        let ts = stream("let s = \"xxxx\"; let k = 7;\n");
        let k = ts
            .tokens
            .iter()
            .find(|t| t.text == "k")
            .unwrap_or_else(|| panic!("no k token"));
        assert_eq!(k.col, 20);
    }

    #[test]
    fn stray_close_bracket_is_tolerated() {
        let ts = stream("macro_rows! { ) ( }\n");
        // No panic, and the `(`/`)` strays stay unmatched.
        let open = ts.tokens.iter().position(|t| t.text == "(").unwrap_or(0);
        assert_eq!(ts.matching[open], None);
    }
}

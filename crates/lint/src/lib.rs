//! # decolor-lint
//!
//! Workspace invariant linter for the `decolor` workspace: a static CI
//! gate for the properties the equivalence test suites enforce only
//! dynamically — panic-free library error paths, `unsafe`/`SAFETY`
//! hygiene in vendored shims, and determinism (no ambient threads,
//! environment, clocks, or randomized-iteration-order containers in
//! result-affecting code).
//!
//! The linter is three small layers:
//!
//! * [`lexer`] — a comment-, string-, raw-string-, char-literal-, and
//!   `#[cfg(test)]`-aware scrubber that reduces a source file to its
//!   load-bearing code (plus the comment text, for `// SAFETY:` and
//!   `// lint: allow(...)` justifications),
//! * [`tokens`] — a bracket-matched token stream over the scrubbed
//!   code, so the expression-shaped rules (lossy casts, unchecked
//!   offset arithmetic, discarded `Result`s) see call chains and cast
//!   expressions even when they span lines, and
//! * [`rules`] — the checks themselves, scoped per crate by [`config`].
//!
//! Run it with `cargo run -p decolor-lint` from the workspace root; it
//! prints `file:line: [ID name] message` diagnostics and exits non-zero
//! on any violation (`--format json` for machine-readable output,
//! `--explain <RULE_ID>` for the rationale). The `workspace_is_clean`
//! integration test runs the same walk in-process, so a violation also
//! fails `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod tokens;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{Rule, Violation};

/// Lints one source string under the rule set for `rel_path`.
///
/// Returns an empty list for out-of-scope paths.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let Some(rules) = config::rules_for(rel_path) else {
        return Vec::new();
    };
    let lexed = lexer::lex(source);
    rules::lint_lexed(&lexed, &rules)
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative source roots the linter walks.
fn source_roots(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut roots = vec![root.join("src")];
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let mut members: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                members.push(src);
            }
        }
        members.sort();
        roots.extend(members);
    }
    Ok(roots)
}

/// A violation bound to the file it occurred in.
#[derive(Clone, Debug)]
pub struct FileViolation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The violation itself.
    pub violation: Violation,
    /// The offending source line, trimmed, for diagnostics.
    pub excerpt: String,
}

/// Lints the whole workspace rooted at `root`: every `.rs` file under
/// `src/`, `crates/*/src/`, and `vendor/*/src/`, plus the
/// `#![forbid(unsafe_code)]` presence check on the library crates.
///
/// # Errors
///
/// An error string when the root does not look like the workspace or a
/// file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileViolation>, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not contain a Cargo.toml (pass the workspace root)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for dir in source_roots(root)? {
        collect_rs(&dir, &mut files)?;
    }
    let mut out = Vec::new();
    for path in &files {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().into_owned(),
        };
        let source =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let lines: Vec<&str> = source.lines().collect();
        for violation in lint_source(&rel, &source) {
            let excerpt = lines
                .get(violation.line.saturating_sub(1))
                .map_or(String::new(), |l| l.trim().to_string());
            out.push(FileViolation {
                path: rel.clone(),
                violation,
                excerpt,
            });
        }
    }
    // Crate-level attribute checks.
    for lib in config::FORBID_UNSAFE_LIBS {
        let path = root.join(lib);
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let lexed = lexer::lex(&source);
        if !rules::has_forbid_unsafe(&lexed) {
            out.push(FileViolation {
                path: lib.to_string(),
                violation: Violation {
                    line: 1,
                    rule: Rule::ForbidUnsafe,
                    message: "crate must keep its `#![forbid(unsafe_code)]` attribute".into(),
                },
                excerpt: String::new(),
            });
        }
    }
    Ok(out)
}

//! A minimal, dependency-free Rust lexer for the invariant linter.
//!
//! The rule engine must never fire on text that is not load-bearing
//! code: string literals (`"unwrap()"` in a diagnostic message), doc
//! examples (which live inside `///` comments), `#[cfg(test)]` modules
//! and items, and ordinary comments. This lexer classifies every
//! character of a source file and produces
//!
//! * [`Lexed::code`] — the source split into lines with everything that
//!   is not compiled, non-test code blanked to spaces (columns are
//!   preserved, so reported positions match the original file), and
//! * [`Lexed::comments`] — the comment text attached to each line, kept
//!   separately so the engine can read `// SAFETY:` justifications and
//!   `// lint: allow(...)` annotations.
//!
//! It understands line and (nested) block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, …), byte and C strings
//! (`b"…"`, `c"…"`, `br#"…"#`), raw identifiers (`r#fn`), char and byte
//! literals including escapes (`'\''`, `'\u{1F980}'`, `b'x'`), and
//! lifetimes (`'a` is code, not an unterminated char literal).

/// A source file with every non-code character blanked out.
#[derive(Debug)]
pub struct Lexed {
    /// One entry per source line: the line's code with comments, literal
    /// contents, and `#[cfg(test)]` items replaced by spaces.
    pub code: Vec<String>,
    /// One entry per source line: the concatenated comment text starting
    /// on that line (empty when the line has no comment).
    pub comments: Vec<String>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Blanks `chars[from..to]` to spaces, preserving newlines.
fn blank(chars: &mut [char], from: usize, to: usize) {
    for c in chars.iter_mut().take(to).skip(from) {
        if *c != '\n' {
            *c = ' ';
        }
    }
}

/// Consumes a `"…"` string literal starting at the opening quote,
/// returning the index one past the closing quote (or the end of input
/// for an unterminated literal).
fn scan_string(chars: &[char], start: usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

/// Consumes a raw string starting at the first `#` or `"` after the
/// prefix identifier (`r`, `br`, `cr`). Returns `None` when the hashes
/// are not followed by a quote — that is a raw identifier like `r#fn`,
/// which is ordinary code.
fn scan_raw_string(chars: &[char], start: usize) -> Option<usize> {
    let mut hashes = 0usize;
    let mut i = start;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= chars.len() || chars[i] != '"' {
        return None;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && j < chars.len() && chars[j] == '#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(chars.len())
}

/// Consumes a `'…'` char/byte literal or recognizes a lifetime at the
/// opening quote. Returns `(end, is_literal)`: for a lifetime, `end` is
/// just past the quote and the text stays code.
fn scan_quote(chars: &[char], start: usize) -> (usize, bool) {
    let n = chars.len();
    if start + 1 >= n {
        return (start + 1, false);
    }
    let next = chars[start + 1];
    if next == '\\' {
        // Escaped char literal: '\n', '\'', '\\', '\u{…}'.
        let mut i = start + 2;
        if i < n && chars[i] == 'u' && i + 1 < n && chars[i + 1] == '{' {
            i += 2;
            while i < n && chars[i] != '}' {
                i += 1;
            }
        }
        i += 1; // the escaped character (or the closing '}')
        while i < n && chars[i] != '\'' {
            i += 1;
        }
        return (usize::min(i + 1, n), true);
    }
    if is_ident_start(next) {
        // 'a' is a char literal only when a quote follows immediately;
        // otherwise this is a lifetime (or a loop label).
        if start + 2 < n && chars[start + 2] == '\'' {
            return (start + 3, true);
        }
        return (start + 1, false);
    }
    if start + 2 < n && chars[start + 2] == '\'' {
        return (start + 3, true); // e.g. '(' or '0'
    }
    (start + 1, false)
}

/// Pass 1: blanks comments and literal contents in `chars`, appending
/// comment text (per starting line) into `comments`.
fn strip_comments_and_literals(chars: &mut [char], line_of: &[usize], comments: &mut [String]) {
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            comments[line_of[start]].push_str(&text);
            blank(chars, start, i);
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            let mut frag = start;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        let text: String = chars[frag..i].iter().collect();
                        comments[line_of[frag]].push_str(&text);
                        frag = i + 1;
                    }
                    i += 1;
                }
            }
            if frag < i {
                let end = usize::min(i, n);
                let text: String = chars[frag..end].iter().collect();
                comments[line_of[frag]].push_str(&text);
            }
            blank(chars, start, i);
        } else if c == '"' {
            let end = scan_string(chars, i);
            blank(chars, i, end);
            i = end;
        } else if c == '\'' {
            let (end, is_literal) = scan_quote(chars, i);
            if is_literal {
                blank(chars, i, end);
            }
            i = end;
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            if i < n {
                match ident.as_str() {
                    "r" | "br" | "cr" if chars[i] == '"' || chars[i] == '#' => {
                        if let Some(end) = scan_raw_string(chars, i) {
                            blank(chars, start, end);
                            i = end;
                        }
                    }
                    "b" | "c" if chars[i] == '"' => {
                        let end = scan_string(chars, i);
                        blank(chars, start, end);
                        i = end;
                    }
                    "b" if chars[i] == '\'' => {
                        let (end, is_literal) = scan_quote(chars, i);
                        if is_literal {
                            blank(chars, start, end);
                        }
                        i = end;
                    }
                    _ => {}
                }
            }
        } else {
            i += 1;
        }
    }
}

/// Returns `true` when attribute content (the text inside `#[…]`) is a
/// `cfg(...)` whose predicate mentions `test` as a full word — i.e. the
/// annotated item only compiles into test builds.
fn is_cfg_test(inner: &str) -> bool {
    let trimmed = inner.trim_start();
    let Some(rest) = trimmed.strip_prefix("cfg") else {
        return false;
    };
    if !rest.trim_start().starts_with('(') {
        return false;
    }
    let bytes: Vec<char> = rest.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == 't' && bytes[i..].starts_with(&['t', 'e', 's', 't']) {
            let before_ok = i == 0 || !is_ident_continue(bytes[i - 1]);
            let after = bytes.get(i + 4).copied();
            let after_ok = after.is_none_or(|c| !is_ident_continue(c));
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Skips whitespace (spaces/newlines) from `i`, returning the first
/// non-whitespace index (or `len`).
fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

/// Parses an attribute starting at `#` (with optional `!`), returning
/// `(inner_text, end_index)` one past the closing `]`, or `None` when
/// the `#` does not open an attribute.
fn parse_attribute(chars: &[char], start: usize) -> Option<(String, usize)> {
    let mut i = start + 1;
    if i < chars.len() && chars[i] == '!' {
        i += 1;
    }
    i = skip_ws(chars, i);
    if i >= chars.len() || chars[i] != '[' {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < chars.len() {
        match chars[i] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    let inner: String = chars[open + 1..i].iter().collect();
                    return Some((inner, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Pass 2: blanks every item annotated `#[cfg(test)]` (or any `cfg`
/// predicate mentioning `test`), including the attribute itself, any
/// stacked attributes, and the item's balanced `{…}` body (or through
/// the `;` of a declaration like `mod tests;`).
fn strip_cfg_test_items(chars: &mut [char]) {
    let n = chars.len();
    let mut i = 0;
    while i < n {
        if chars[i] != '#' {
            i += 1;
            continue;
        }
        let Some((inner, attr_end)) = parse_attribute(chars, i) else {
            i += 1;
            continue;
        };
        if !is_cfg_test(&inner) {
            i = attr_end;
            continue;
        }
        // Skip stacked attributes after the cfg(test) one.
        let mut j = skip_ws(chars, attr_end);
        while j < n && chars[j] == '#' {
            let Some((_, next_end)) = parse_attribute(chars, j) else {
                break;
            };
            j = skip_ws(chars, next_end);
        }
        // Consume the annotated item: through a balanced `{…}` body, or
        // to the first `;` outside brackets.
        let mut depth = 0isize;
        let mut end = n;
        while j < n {
            match chars[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                ';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                '{' => {
                    let mut braces = 1isize;
                    j += 1;
                    while j < n && braces > 0 {
                        match chars[j] {
                            '{' => braces += 1,
                            '}' => braces -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        blank(chars, i, end);
        i = end;
    }
}

/// Lexes `source` into code and comment lines. See the module docs for
/// what counts as code.
pub fn lex(source: &str) -> Lexed {
    let mut chars: Vec<char> = source.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut line = 0usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let num_lines = line + 1;
    let mut comments = vec![String::new(); num_lines];

    strip_comments_and_literals(&mut chars, &line_of, &mut comments);
    strip_cfg_test_items(&mut chars);

    let mut code = vec![String::new(); num_lines];
    let mut current = 0usize;
    for &c in &chars {
        if c == '\n' {
            current += 1;
        } else {
            code[current].push(c);
        }
    }
    Lexed { code, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_contents_are_blanked() {
        let lexed = lex("let x = \"call .unwrap() here\";\n");
        assert!(!lexed.code[0].contains("unwrap"));
        assert!(lexed.code[0].contains("let x ="));
    }

    #[test]
    fn raw_strings_and_raw_identifiers() {
        let lexed = lex("let s = r#\"panic!(\"no\")\"#;\nlet r#fn = 1;\n");
        assert!(!lexed.code[0].contains("panic"));
        assert!(lexed.code[1].contains("r#fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(lexed.code[0].contains("'a"));
        assert!(!lexed.code[1].contains('x'));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n");
        assert!(lexed.code[0].trim().is_empty());
        assert!(lexed.code[1].trim().is_empty());
        assert!(lexed.comments[1].contains("unwrap"));
        assert!(lexed.code[3].contains("fn f"));
    }

    #[test]
    fn cfg_test_modules_are_blanked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert!(lexed.code[0].contains("live"));
        assert!(lexed.code[3].trim().is_empty());
        assert!(lexed.code[5].contains("after"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c.unwrap() */ fn f() {}\n");
        assert!(!lexed.code[0].contains("unwrap"));
        assert!(lexed.code[0].contains("fn f"));
    }
}

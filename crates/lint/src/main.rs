//! `decolor-lint` — the workspace invariant linter as a CI gate.
//!
//! Usage: `decolor-lint [--root <dir>] [--quiet]`
//!
//! Walks `src/`, `crates/*/src/`, and `vendor/*/src/` under the root
//! (default: the current directory), prints `file:line: [rule] message`
//! diagnostics, and exits 1 on any violation (2 on usage or I/O
//! errors). See the README's "Static guarantees" section for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    return Err("--root needs a directory argument".into());
                };
                root = PathBuf::from(dir);
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: decolor-lint [--root <dir>] [--quiet]");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let violations = decolor_lint::lint_workspace(&root)?;
    if violations.is_empty() {
        if !quiet {
            println!("decolor-lint: workspace invariants hold");
        }
        return Ok(true);
    }
    for fv in &violations {
        eprintln!(
            "{}:{}: [{}] {}",
            fv.path,
            fv.violation.line,
            fv.violation.rule.name(),
            fv.violation.message
        );
        if !fv.excerpt.is_empty() {
            eprintln!("    {}", fv.excerpt);
        }
    }
    eprintln!(
        "decolor-lint: {} violation(s) — see README \"Static guarantees\"",
        violations.len()
    );
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("decolor-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

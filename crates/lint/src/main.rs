//! `decolor-lint` — the workspace invariant linter as a CI gate.
//!
//! Usage: `decolor-lint [--root <dir>] [--quiet] [--format text|json]
//! [--explain <RULE_ID>]`
//!
//! Walks `src/`, `crates/*/src/`, and `vendor/*/src/` under the root
//! (default: the current directory), prints
//! `file:line: [ID name] message` diagnostics, and exits 1 on any
//! violation (2 on usage or I/O errors). `--format json` emits one JSON
//! array of diagnostic objects on stdout; `--explain <RULE_ID>` prints
//! the rule's rationale and exits. See the README's "Static guarantees"
//! section for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

use decolor_lint::rules::Rule;
use decolor_lint::FileViolation;

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for diagnostic text, which is ASCII by construction.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

fn print_json(violations: &[FileViolation]) {
    println!("[");
    for (i, fv) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        println!(
            "  {{\"path\":\"{}\",\"line\":{},\"id\":\"{}\",\"rule\":\"{}\",\
             \"message\":\"{}\",\"excerpt\":\"{}\"}}{comma}",
            json_escape(&fv.path),
            fv.violation.line,
            fv.violation.rule.id(),
            fv.violation.rule.name(),
            json_escape(&fv.violation.message),
            json_escape(&fv.excerpt),
        );
    }
    println!("]");
}

fn explain(id: &str) -> Result<bool, String> {
    let Some(rule) = Rule::from_id(&id.to_uppercase()) else {
        let known: Vec<&str> = Rule::all().iter().map(|r| r.id()).collect();
        return Err(format!(
            "unknown rule id `{id}` (known: {})",
            known.join(", ")
        ));
    };
    println!("{}", rule.explain());
    Ok(true)
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    return Err("--root needs a directory argument".into());
                };
                root = PathBuf::from(dir);
            }
            "--quiet" => quiet = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => {
                    return Err(format!("unknown format `{other}` (expected text|json)"))
                }
                None => return Err("--format needs an argument (text|json)".into()),
            },
            "--explain" => {
                let Some(id) = args.next() else {
                    return Err("--explain needs a rule id (e.g. CAST01)".into());
                };
                return explain(&id);
            }
            "--help" | "-h" => {
                println!(
                    "usage: decolor-lint [--root <dir>] [--quiet] [--format text|json] \
                     [--explain <RULE_ID>]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let violations = decolor_lint::lint_workspace(&root)?;
    if json {
        print_json(&violations);
        return Ok(violations.is_empty());
    }
    if violations.is_empty() {
        if !quiet {
            println!("decolor-lint: workspace invariants hold");
        }
        return Ok(true);
    }
    for fv in &violations {
        eprintln!(
            "{}:{}: [{} {}] {}",
            fv.path,
            fv.violation.line,
            fv.violation.rule.id(),
            fv.violation.rule.name(),
            fv.violation.message
        );
        if !fv.excerpt.is_empty() {
            eprintln!("    {}", fv.excerpt);
        }
    }
    eprintln!(
        "decolor-lint: {} violation(s) — see README \"Static guarantees\" or \
         `decolor-lint --explain <RULE_ID>`",
        violations.len()
    );
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("decolor-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

//! Maps workspace-relative paths to the rule set that applies to them.
//!
//! The scope table encodes the repo's invariants (see README "Static
//! guarantees"):
//!
//! | scope | panic | unsafe | thread | env | time | hasher | entropy | cast | arith | result |
//! |---|---|---|---|---|---|---|---|---|---|---|
//! | library crates (`graph`, `runtime`, `core`, `baselines`) + facade | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | –¹ | ✓ |
//! | `crates/lint` (dogfood) | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | – | ✓ |
//! | `crates/bench`, `crates/cli` (timing/presentation layers) | – | ✓ | ✓ | ✓ | – | – | ✓ | – | – | – |
//! | `vendor/rayon` (the pool: owns threads + `DECOLOR_THREADS`) | – | ✓ | – | – | ✓ | ✓ | ✓ | – | – | – |
//! | `vendor/criterion` (the timing harness) | – | ✓ | ✓ | ✓ | – | ✓ | ✓ | – | – | – |
//! | other `vendor/*` | – | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ | – | – | – |
//!
//! ¹ the offset-arithmetic rule (`ARITH01`) applies only inside
//! `crates/graph/src/storage/` and `crates/core/src/checkpoint.rs` (raw
//! byte-offset arithmetic against mmap'd stores) plus the hot-path
//! word/slot kernels `crates/core/src/bitset.rs` and
//! `crates/graph/src/relabel.rs`, where a wrapping word index or slot
//! offset silently corrupts a palette or permutation.
//! Vendor crates are exempt from the cast/result rules because they are
//! vendored upstream API surfaces (see `vendor/README.md`), not code
//! this workspace authors.

use crate::rules::RuleSet;

/// The crates that must keep their `#![forbid(unsafe_code)]` attribute
/// (workspace-relative `lib.rs` paths).
pub const FORBID_UNSAFE_LIBS: [&str; 5] = [
    "crates/graph/src/lib.rs",
    "crates/runtime/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/baselines/src/lib.rs",
    "crates/bench/src/lib.rs",
];

const LIBRARY_SCOPES: [&str; 6] = [
    "src/",
    "crates/graph/src/",
    "crates/runtime/src/",
    "crates/core/src/",
    "crates/baselines/src/",
    "crates/lint/src/",
];

const TIMING_SCOPES: [&str; 2] = ["crates/bench/src/", "crates/cli/src/"];

/// The scopes whose `+`/`*` byte-offset arithmetic must be checked
/// (`ARITH01`): the mmap'd-store layers where a wrapping offset multiply
/// misreads a "verified" store, plus the bitset/relabel hot-path kernels
/// whose word and slot indices must not wrap.
const ARITH_SCOPES: [&str; 4] = [
    "crates/graph/src/storage/",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/bitset.rs",
    "crates/graph/src/relabel.rs",
];

/// The rule set for a workspace-relative path (forward slashes), or
/// `None` when the file is out of scope (tests, examples, fixtures).
pub fn rules_for(rel_path: &str) -> Option<RuleSet> {
    if LIBRARY_SCOPES.iter().any(|p| rel_path.starts_with(p)) {
        return Some(RuleSet {
            panic: true,
            safety: true,
            thread: true,
            env: true,
            time: true,
            hasher: true,
            entropy: true,
            cast: true,
            arith: ARITH_SCOPES.iter().any(|p| rel_path.starts_with(p)),
            result: true,
        });
    }
    if TIMING_SCOPES.iter().any(|p| rel_path.starts_with(p)) {
        return Some(RuleSet {
            panic: false,
            safety: true,
            thread: true,
            env: true,
            time: false,
            hasher: false,
            entropy: true,
            cast: false,
            arith: false,
            result: false,
        });
    }
    if rel_path.starts_with("vendor/rayon/src/") {
        // The pool legitimately owns scoped worker threads and the
        // `DECOLOR_THREADS` environment read.
        return Some(RuleSet {
            panic: false,
            safety: true,
            thread: false,
            env: false,
            time: true,
            hasher: true,
            entropy: true,
            cast: false,
            arith: false,
            result: false,
        });
    }
    if rel_path.starts_with("vendor/criterion/src/") {
        // The bench harness legitimately measures wall-clock time.
        return Some(RuleSet {
            panic: false,
            safety: true,
            thread: true,
            env: true,
            time: false,
            hasher: true,
            entropy: true,
            cast: false,
            arith: false,
            result: false,
        });
    }
    if rel_path.starts_with("vendor/") && rel_path.contains("/src/") {
        return Some(RuleSet {
            panic: false,
            safety: true,
            thread: true,
            env: true,
            time: true,
            hasher: true,
            entropy: true,
            cast: false,
            arith: false,
            result: false,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_crates_get_the_full_set() {
        let r = rules_for("crates/core/src/linial.rs").unwrap();
        assert!(r.panic && r.hasher && r.time && r.thread && r.env);
        assert!(r.cast && r.result && r.entropy);
        assert!(!r.arith, "arith is scoped to storage/checkpoint only");
    }

    #[test]
    fn storage_and_checkpoint_get_the_arith_rule() {
        assert!(rules_for("crates/graph/src/storage/csr.rs").unwrap().arith);
        assert!(
            rules_for("crates/graph/src/storage/manifest.rs")
                .unwrap()
                .arith
        );
        assert!(rules_for("crates/core/src/checkpoint.rs").unwrap().arith);
        assert!(rules_for("crates/core/src/bitset.rs").unwrap().arith);
        assert!(rules_for("crates/graph/src/relabel.rs").unwrap().arith);
        assert!(!rules_for("crates/graph/src/generators.rs").unwrap().arith);
    }

    #[test]
    fn bench_and_cli_may_time_and_panic() {
        let r = rules_for("crates/bench/src/bin/scaling.rs").unwrap();
        assert!(!r.panic && !r.time && r.thread);
        assert!(!r.cast && !r.result, "presentation layers may cast freely");
        assert!(r.entropy, "entropy-seeded RNG is banned even in bench");
    }

    #[test]
    fn rayon_owns_threads_and_env() {
        let r = rules_for("vendor/rayon/src/lib.rs").unwrap();
        assert!(!r.thread && !r.env && r.safety);
        assert!(!r.cast && !r.arith && !r.result, "vendor is cast-exempt");
        assert!(r.entropy);
    }

    #[test]
    fn tests_and_fixtures_are_out_of_scope() {
        assert!(rules_for("crates/core/tests/view_equivalence.rs").is_none());
        assert!(rules_for("examples/quickstart.rs").is_none());
    }
}

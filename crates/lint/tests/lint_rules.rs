//! Fixture-driven conformance tests for the workspace linter.
//!
//! Each rule family gets a violating fixture (every diagnostic it must
//! raise) and a clean fixture (every escape hatch and lexing trap it must
//! stay silent on). The final test dogfoods the linter on this workspace
//! itself, which is the property CI actually gates on.

use decolor_lint::lint_source;
use decolor_lint::rules::Violation;

/// Reads a fixture from `tests/fixtures/`.
fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(err) => panic!("fixture {} unreadable: {err}", path.display()),
    }
}

/// Lints a fixture as if it lived at `rel_path` inside the workspace.
fn lint_as(rel_path: &str, name: &str) -> Vec<Violation> {
    lint_source(rel_path, &fixture(name))
}

fn count(violations: &[Violation], rule: &str) -> usize {
    violations.iter().filter(|v| v.rule.name() == rule).count()
}

fn lines(violations: &[Violation], rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule.name() == rule)
        .map(|v| v.line)
        .collect()
}

// ---------------------------------------------------------------- panic --

#[test]
fn panic_fixture_flags_every_site() {
    let v = lint_as("crates/core/src/fixture.rs", "panic_violating.rs");
    assert_eq!(
        count(&v, "panic"),
        6,
        "unwrap, expect, panic!, todo!, unimplemented!, unreachable!: {v:?}"
    );
    assert_eq!(v.len(), 6, "no other rule should fire: {v:?}");
}

#[test]
fn panic_clean_fixture_is_silent() {
    // Exercises the lexer: unwrap in a plain string, in a raw string, in a
    // multi-line string, in a doc example, a `#[cfg(test)]` module, a
    // lifetime that must not be read as a char literal, and a justified
    // annotation.
    let v = lint_as("crates/core/src/fixture.rs", "panic_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

#[test]
fn panic_rule_is_off_for_bench_and_cli() {
    for scope in ["crates/bench/src/fixture.rs", "crates/cli/src/fixture.rs"] {
        let v = lint_as(scope, "panic_violating.rs");
        assert_eq!(count(&v, "panic"), 0, "{scope} should tolerate panics");
    }
}

// --------------------------------------------------------- unsafe-safety --

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let v = lint_as("vendor/memmap2/src/fixture.rs", "unsafe_violating.rs");
    assert_eq!(count(&v, "unsafe-safety"), 1, "got: {v:?}");
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    // Second site has an attribute between the comment and the keyword —
    // the lookback window must tolerate that.
    let v = lint_as("vendor/memmap2/src/fixture.rs", "unsafe_clean.rs");
    assert_eq!(count(&v, "unsafe-safety"), 0, "got: {v:?}");
}

// ----------------------------------------------------------- determinism --

#[test]
fn determinism_fixture_flags_every_site() {
    let v = lint_as("crates/graph/src/fixture.rs", "determinism_violating.rs");
    assert_eq!(count(&v, "det-thread"), 2, "spawn + scope: {v:?}");
    assert_eq!(count(&v, "det-env"), 1, "env::var: {v:?}");
    assert_eq!(count(&v, "det-time"), 2, "Instant::now + SystemTime: {v:?}");
    assert_eq!(
        count(&v, "det-hasher"),
        4,
        "HashMap/HashSet in signature and body: {v:?}"
    );
}

#[test]
fn determinism_clean_fixture_is_silent() {
    let v = lint_as("crates/graph/src/fixture.rs", "determinism_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

#[test]
fn hasher_and_time_rules_are_scoped() {
    // bench/cli may take timestamps and use default hashers (reporting
    // only); vendor/rayon owns the thread pool and the DECOLOR_THREADS
    // read; vendor/criterion is the timing harness.
    let bench = lint_as("crates/bench/src/fixture.rs", "determinism_violating.rs");
    assert_eq!(count(&bench, "det-time"), 0);
    assert_eq!(count(&bench, "det-hasher"), 0);
    assert_eq!(
        count(&bench, "det-thread"),
        2,
        "benches still may not spawn"
    );

    let rayon = lint_as("vendor/rayon/src/fixture.rs", "determinism_violating.rs");
    assert_eq!(count(&rayon, "det-thread"), 0);
    assert_eq!(count(&rayon, "det-env"), 0);
    assert_eq!(
        count(&rayon, "det-time"),
        2,
        "the pool has no business timing"
    );

    let criterion = lint_as(
        "vendor/criterion/src/fixture.rs",
        "determinism_violating.rs",
    );
    assert_eq!(count(&criterion, "det-time"), 0);
    assert_eq!(count(&criterion, "det-thread"), 2);
}

#[test]
fn out_of_scope_paths_are_not_linted() {
    for path in [
        "crates/lint/tests/fixtures/fixture.rs",
        "crates/graph/tests/fixture.rs",
        "scripts/fixture.rs",
    ] {
        let v = lint_source(path, &fixture("panic_violating.rs"));
        assert!(v.is_empty(), "{path} should be out of scope: {v:?}");
    }
}

// ------------------------------------------------------------ lossy-cast --

#[test]
fn cast_fixture_flags_every_site() {
    let v = lint_as("crates/core/src/fixture.rs", "cast_violating.rs");
    assert_eq!(
        lines(&v, "lossy-cast"),
        vec![6, 10, 14, 20, 25],
        "truncating, widening, index, multi-line chain, malformed-allow: {v:?}"
    );
    assert_eq!(
        count(&v, "allow-syntax"),
        1,
        "the reason-less allow is itself a diagnostic: {v:?}"
    );
}

#[test]
fn cast_clean_fixture_is_silent() {
    // Exercises the traps: cast in a string, in a raw string, in a doc
    // example, in `#[cfg(test)]`, a non-numeric `as` coercion, an `as`
    // import rename, and own-line + trailing annotations.
    let v = lint_as("crates/core/src/fixture.rs", "cast_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

#[test]
fn cast_rule_is_off_for_bench_cli_and_vendor() {
    for scope in [
        "crates/bench/src/fixture.rs",
        "crates/cli/src/fixture.rs",
        "vendor/memmap2/src/fixture.rs",
    ] {
        let v = lint_as(scope, "cast_violating.rs");
        assert_eq!(count(&v, "lossy-cast"), 0, "{scope} should tolerate casts");
    }
}

// -------------------------------------------------- unchecked-offset-arith --

#[test]
fn arith_fixture_flags_every_site_in_storage_scope() {
    let v = lint_as("crates/graph/src/storage/fixture.rs", "arith_violating.rs");
    assert_eq!(
        lines(&v, "unchecked-offset-arith"),
        vec![6, 10, 14, 19],
        "offset sum, stride product, compound accumulate, multi-line sum: {v:?}"
    );
}

#[test]
fn arith_rule_fires_in_checkpoint_scope_only() {
    let v = lint_as("crates/core/src/checkpoint.rs", "arith_violating.rs");
    assert_eq!(count(&v, "unchecked-offset-arith"), 4, "got: {v:?}");
    // The same expressions outside the audited byte-layout scopes are
    // ordinary integer arithmetic.
    let out = lint_as("crates/core/src/fixture.rs", "arith_violating.rs");
    assert_eq!(count(&out, "unchecked-offset-arith"), 0, "got: {out:?}");
}

#[test]
fn arith_clean_fixture_is_silent() {
    // checked_add/checked_mul, a const-const product, marker-free sums,
    // a deref that must not parse as multiplication, and an annotation.
    let v = lint_as("crates/graph/src/storage/fixture.rs", "arith_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

// ------------------------------------------------------- discarded-result --

#[test]
fn result_fixture_flags_every_site() {
    let v = lint_as("crates/core/src/fixture.rs", "result_violating.rs");
    assert_eq!(
        lines(&v, "discarded-result"),
        vec![9, 13],
        "let _ and let _: T: {v:?}"
    );
    assert_eq!(
        lines(&v, "discarded-result-ok"),
        vec![17, 23],
        "statement-level and multi-line .ok() drops: {v:?}"
    );
}

#[test]
fn result_clean_fixture_is_silent() {
    // Named discards, expression-position `.ok()`, tuple patterns,
    // string/test traps, and a justified annotation.
    let v = lint_as("crates/core/src/fixture.rs", "result_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

// ----------------------------------------------------------- det-entropy --

#[test]
fn entropy_fixture_flags_every_site() {
    let v = lint_as("crates/graph/src/fixture.rs", "entropy_violating.rs");
    assert_eq!(
        count(&v, "det-entropy"),
        2,
        "thread_rng + from_entropy: {v:?}"
    );
}

#[test]
fn entropy_clean_fixture_is_silent() {
    let v = lint_as("crates/graph/src/fixture.rs", "entropy_clean.rs");
    assert!(v.is_empty(), "expected silence, got: {v:?}");
}

// ---------------------------------------------------------- allow-syntax --

#[test]
fn malformed_allows_are_flagged_and_suppress_nothing() {
    let v = lint_as("crates/core/src/fixture.rs", "allow_syntax_violating.rs");
    assert_eq!(
        count(&v, "allow-syntax"),
        3,
        "unknown family, missing reason, empty reason: {v:?}"
    );
    assert_eq!(
        count(&v, "panic"),
        3,
        "invalid annotations must not suppress the sites under them: {v:?}"
    );
}

// ---------------------------------------------------------- forbid attr --

#[test]
fn forbid_unsafe_attribute_detection() {
    use decolor_lint::lexer::lex;
    use decolor_lint::rules::has_forbid_unsafe;
    assert!(has_forbid_unsafe(&lex(
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )));
    assert!(has_forbid_unsafe(&lex(
        "//! Doc header.\n#![forbid(rust_2018_idioms, unsafe_code)]\n"
    )));
    assert!(!has_forbid_unsafe(&lex("pub fn f() {}\n")));
    assert!(
        !has_forbid_unsafe(&lex("// #![forbid(unsafe_code)]\npub fn f() {}\n")),
        "a commented-out attribute must not count"
    );
}

// ---------------------------------------------------------------- lexer --

#[test]
fn lexer_preserves_columns_through_scrubbing() {
    use decolor_lint::lexer::lex;
    use decolor_lint::tokens::{tokenize, TokenKind};

    // The string literal is scrubbed to blanks, so `offset` must keep the
    // exact column it has in the original source.
    let src = "let msg = \"cast as u32 here\"; let x = offset as u32;\n";
    let lexed = lex(src);
    let ts = tokenize(&lexed.code);
    let offset_tok = ts
        .tokens
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text == "offset")
        .expect("offset token present");
    assert_eq!(offset_tok.line, 0);
    assert_eq!(offset_tok.col, src.find("offset").unwrap());
    assert!(
        !ts.tokens.iter().any(|t| t.text == "cast"),
        "string contents must be scrubbed, not tokenized"
    );

    // Multi-line strings shift nothing either: the token after the
    // closing quote keeps its original line and column.
    let src2 = "let s = \"a\nb\"; let word_len = 4;\n";
    let ts2 = tokenize(&lex(src2).code);
    let word_tok = ts2
        .tokens
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text == "word_len")
        .expect("word_len token present");
    assert_eq!(word_tok.line, 1);
    assert_eq!(word_tok.col, "b\"; let ".len());
}

// -------------------------------------------------------------- dogfood --

#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|err| panic!("workspace root unresolvable: {err}"));
    let violations = decolor_lint::lint_workspace(&root)
        .unwrap_or_else(|err| panic!("lint_workspace failed: {err}"));
    assert!(
        violations.is_empty(),
        "the workspace must satisfy its own invariants:\n{}",
        violations
            .iter()
            .map(|fv| format!(
                "{}:{}: [{}]",
                fv.path,
                fv.violation.line,
                fv.violation.rule.name()
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn violation_lines_are_one_based_and_stable() {
    // Pin the exact diagnostic lines of the panic fixture so excerpt
    // printing in main.rs can rely on them.
    let v = lint_as("crates/core/src/fixture.rs", "panic_violating.rs");
    assert_eq!(lines(&v, "panic"), vec![6, 10, 14, 18, 22, 26]);
}

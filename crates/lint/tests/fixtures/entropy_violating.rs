// Counter-example fixture for DET05: entropy-seeded RNG in
// result-affecting code. One diagnostic per site.

pub fn ambient_thread_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn entropy_seeded() -> u64 {
    let mut rng = rand::rngs::SmallRng::from_entropy();
    rng.next_u64()
}

//! Negative fixture for the determinism rules: ordered collections, an
//! annotated membership-only probe, and clock/thread mentions that are
//! only prose. The linter must stay silent on this file under the
//! full library rule set.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Counting with an ordered map: iteration order is the key order, so the
/// result cannot depend on a hasher seed. (Prose mentions of HashMap,
/// Instant::now or thread::spawn in comments are inert.)
pub fn count(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn dedup_sorted(xs: &[u32]) -> Vec<u32> {
    let s: BTreeSet<u32> = xs.iter().copied().collect();
    s.into_iter().collect()
}

pub fn has_duplicates(xs: &[u32]) -> bool {
    // lint: allow(determinism, "membership-only probe; the set is never iterated, so hash order cannot reach the result")
    let mut seen = std::collections::HashSet::with_capacity(xs.len());
    xs.iter().any(|&x| !seen.insert(x))
}

//! Negative fixture for the panic rule: every `unwrap`/`panic!` below is
//! either inert text (string literal, doc comment, doc example), test-only
//! code (`#[cfg(test)]`), or carries a justified annotation. The linter
//! must stay silent on this file.

/// Calling `.unwrap()` on `None` panics:
///
/// ```rust
/// let x: Option<u32> = None;
/// x.unwrap(); // doc examples are comments to the lexer
/// ```
pub fn describe() -> &'static str {
    "call unwrap() and panic!(\"msg\") carefully"
}

pub fn raw_literal() -> &'static str {
    r#"x.expect("msg") inside a raw string is data, not code"#
}

pub const HELP: &str = "usage:
  never call unwrap() on user input
";

pub fn annotated(x: Option<u32>) -> u32 {
    // lint: allow(panic, "caller guarantees Some by construction")
    x.expect("invariant: always Some here")
}

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if v.is_none() {
            panic!("test panics are out of scope");
        }
    }
}

// Negative fixture: every `unsafe` carries a `// SAFETY:` justification,
// either on the preceding line or a few lines up (attributes between the
// comment and the keyword are tolerated by the lookback window).

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

// SAFETY: `Token` is a plain integer; sending it between threads is sound.
#[allow(dead_code)]
unsafe impl Send for Token {}

pub struct Token(u64);

//! Negative fixture for the det-entropy rule: explicit seeding, inert
//! text, and test-only code. The linter must stay silent on this file.

/// Seeding policy:
///
/// ```rust
/// let rng = SmallRng::from_entropy(); // doc examples are comments
/// ```
pub fn seeded(seed: u64) -> u64 {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn describe() -> &'static str {
    "never call thread_rng() in result-affecting code"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_entropy() {
        let _rng = rand::thread_rng();
    }
}

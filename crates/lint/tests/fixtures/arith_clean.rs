//! Negative fixture for the offset-arithmetic rule: checked operations,
//! compile-time constant products, marker-free arithmetic, and justified
//! annotations. The linter must stay silent on this file even inside the
//! storage scope.

pub fn checked_sum(offset: u64, len: u64) -> Option<u64> {
    offset.checked_add(len)
}

pub fn checked_product(words: u64) -> Option<u64> {
    words.checked_mul(8)
}

pub const HEADER_WORDS: usize = 9;

pub fn const_const_product() -> usize {
    // Two numeric literals are a compile-time constant, not runtime
    // offset arithmetic.
    9 * 8
}

pub fn marker_free(a: u64, b: u64) -> u64 {
    a + b
}

pub fn annotated(word_index: usize) -> usize {
    // lint: allow(arith, "callers validated word_index against the buffer length")
    word_index * 8
}

pub fn deref_is_not_a_product(x: &u64) -> u64 {
    let copied = *x;
    copied
}

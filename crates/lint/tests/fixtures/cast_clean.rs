//! Negative fixture for the lossy-cast rule: every `as <numeric>` below
//! is inert text, test-only code, a non-numeric cast, or carries a
//! justified annotation. The linter must stay silent on this file.

/// Truncation hazard, documented with an example:
///
/// ```rust
/// let x: u64 = 1 << 40;
/// let bad = x as u32; // doc examples are comments to the lexer
/// ```
pub fn describe() -> &'static str {
    "never write `x as u32` when x is a byte offset"
}

pub fn raw_literal() -> &'static str {
    r#"offset as usize inside a raw string is data, not code"#
}

pub fn annotated(color: u32, palette: usize) -> bool {
    // lint: allow(cast, "colors were validated against the palette above")
    (color as usize) < palette
}

pub fn trailing_annotation(x: u64) -> u32 {
    (x & 0xFF) as u32 // lint: allow(cast, "masked to 8 bits")
}

pub fn non_numeric_target(b: Box<u32>) -> Box<dyn std::fmt::Debug> {
    b as Box<dyn std::fmt::Debug>
}

pub fn as_in_import_rename() -> u32 {
    use std::cmp::max as maximum;
    maximum(1, 2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast() {
        let x: u64 = 7;
        assert_eq!(x as u32, 7);
    }
}

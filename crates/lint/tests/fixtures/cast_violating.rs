// Counter-example fixture: raw `as` casts to numeric types in plain
// library code. The integration test pins one CAST01 diagnostic per site
// and the exact line of each.

pub fn truncating(x: u64) -> u32 {
    x as u32
}

pub fn widening_still_flagged(x: u32) -> u64 {
    x as u64
}

pub fn index_position(slots: &[u8], p: u32) -> u8 {
    slots[p as usize]
}

pub fn multi_line_chain(counts: &[u64]) -> f64 {
    counts
        .iter()
        .sum::<u64>() as f64
}

pub fn malformed_allow_suppresses_nothing(x: usize) -> u32 {
    // lint: allow(cast)
    x as u32
}

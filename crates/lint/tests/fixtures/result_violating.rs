// Counter-example fixture for RES01/RES02: discarded values and
// statement-level `.ok()` drops in plain library code.

fn fallible() -> Result<u32, std::io::Error> {
    Ok(1)
}

pub fn let_underscore_discard() {
    let _ = fallible();
}

pub fn typed_underscore_discard() {
    let _: Result<u32, std::io::Error> = fallible();
}

pub fn statement_ok_drop() {
    fallible().ok();
}

pub fn multi_line_ok_drop() {
    fallible()
        .map(|v| v + 1)
        .ok();
}

// Counter-example fixture: `unsafe` with no safety justification comment
// within the lookback window.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

// Counter-example fixture: every panic-family construct in plain library
// code, none annotated. The integration test asserts one diagnostic per
// site.

pub fn via_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn via_expect(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn via_panic_macro() {
    panic!("no");
}

pub fn via_todo() {
    todo!()
}

pub fn via_unimplemented() {
    unimplemented!()
}

pub fn via_unreachable() -> u32 {
    unreachable!("never happens")
}

// Counter-example fixture for ARITH01: unchecked `+` / `*` on
// byte-offset/length expressions, linted as if it lived in the storage
// scope. One diagnostic per site, lines pinned by the integration test.

pub fn offset_sum(base_offset: u64, len: u64) -> u64 {
    base_offset + len
}

pub fn stride_product(words: u64) -> u64 {
    words * 8
}

pub fn compound_accumulate(cursor: &mut usize, chunk: usize) {
    *cursor += chunk;
}

pub fn multi_line_offset(header_bytes: u64, payload_len: u64) -> u64 {
    header_bytes
        + payload_len
}

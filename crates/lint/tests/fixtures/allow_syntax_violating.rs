// Counter-example fixture: malformed `lint: allow` annotations. Each one
// is itself a diagnostic, and — being invalid — suppresses nothing, so
// the panic sites underneath are also flagged.

pub fn unknown_family(x: Option<u32>) -> u32 {
    // lint: allow(frobnicate, "no such rule family")
    x.unwrap()
}

pub fn missing_reason(x: Option<u32>) -> u32 {
    // lint: allow(panic)
    x.expect("the annotation above has no justification string")
}

pub fn empty_reason(x: Option<u32>) -> u32 {
    // lint: allow(panic, "")
    x.expect("the annotation above has an empty justification")
}

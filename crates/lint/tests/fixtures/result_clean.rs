//! Negative fixture for the discarded-Result rules: named discards,
//! expression-position `.ok()`, tuple patterns, inert text, and justified
//! annotations. The linter must stay silent on this file.

fn fallible() -> Result<u32, std::io::Error> {
    Ok(1)
}

pub fn named_discard_keeps_the_value() {
    let _guard = fallible();
}

pub fn ok_in_expression_position() -> Option<u32> {
    fallible().ok()
}

pub fn tuple_pattern() -> u32 {
    let (_, kept) = (fallible(), 2);
    kept
}

pub fn annotated_best_effort() {
    // lint: allow(result, "best-effort cleanup; the store is already durable")
    let _ = fallible();
}

pub fn describe() -> &'static str {
    "let _ = write!(buf) and .ok(); in a string are data, not code"
}

#[cfg(test)]
mod tests {
    use super::fallible;

    #[test]
    fn test_code_may_discard() {
        let _ = fallible();
        fallible().ok();
    }
}

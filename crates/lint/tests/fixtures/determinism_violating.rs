// Counter-example fixture: one site per determinism rule, in
// result-affecting library code.

pub fn spawns() {
    std::thread::spawn(|| {}).join().ok();
}

pub fn scopes() {
    std::thread::scope(|_| {});
}

pub fn reads_env() -> Option<String> {
    std::env::var("DECOLOR_SECRET_KNOB").ok()
}

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn system_clock() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn default_hash_map() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

pub fn default_hash_set() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new()
}

//! **Cole–Vishkin 3-coloring of rooted forests** in O(log* n) rounds
//! (\[12, 21\], cited in the paper's introduction as the origin of the
//! deterministic log*-round technique Linial's algorithm generalizes).
//!
//! Each vertex knows its parent (the forest is rooted). One bit-trick
//! round shrinks a k-bit palette to ~2·log₂(k) colors: a vertex takes the
//! index of the lowest bit where its color differs from its parent's,
//! appending that bit's value. After O(log* n) rounds the palette is ≤ 6;
//! three shift-down + recolor rounds finish with 3 colors.

use decolor_core::AlgoError;
use decolor_graph::coloring::{Color, VertexColoring};
use decolor_graph::{Graph, VertexId};
use decolor_runtime::{IdAssignment, Network, NetworkStats};

/// A rooted forest structure over a graph: `parent[v] = None` for roots.
///
/// Every non-root's parent must be a neighbor, and parent pointers must be
/// acyclic and span all edges (i.e. every edge connects a child to its
/// parent — the input graph must *be* the forest).
#[derive(Clone, Debug)]
pub struct RootedForest {
    /// Parent pointer per vertex (`None` = root).
    pub parent: Vec<Option<VertexId>>,
}

impl RootedForest {
    /// Roots each connected component of a forest at its smallest-index
    /// vertex via BFS. (Centralized preprocessing helper; in the LOCAL
    /// model the rooting is assumed given, as in \[12, 21\].)
    ///
    /// # Errors
    ///
    /// [`AlgoError::InvalidParameters`] if `g` is not a forest.
    pub fn root_at_min_ids(g: &Graph) -> Result<RootedForest, AlgoError> {
        if !decolor_graph::properties::is_forest(g) {
            return Err(AlgoError::InvalidParameters {
                reason: "Cole–Vishkin requires a forest".into(),
            });
        }
        let n = g.num_vertices();
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            let mut queue = std::collections::VecDeque::from([VertexId::new(s)]);
            while let Some(v) = queue.pop_front() {
                for u in g.neighbors(v) {
                    if !seen[u.index()] {
                        seen[u.index()] = true;
                        parent[u.index()] = Some(v);
                        queue.push_back(u);
                    }
                }
            }
        }
        Ok(RootedForest { parent })
    }

    /// Validates parent pointers against `g`.
    ///
    /// # Errors
    ///
    /// [`AlgoError::InvalidParameters`] on non-neighbor parents or wrong
    /// shape.
    pub fn validate(&self, g: &Graph) -> Result<(), AlgoError> {
        if self.parent.len() != g.num_vertices() {
            return Err(AlgoError::InvalidParameters {
                reason: "parent vector length mismatch".into(),
            });
        }
        for v in g.vertices() {
            if let Some(p) = self.parent[v.index()] {
                if !g.has_edge(v, p) {
                    return Err(AlgoError::InvalidParameters {
                        reason: format!("parent of {v} is not a neighbor"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One Cole–Vishkin step: the new color of `v` with color `c` and parent
/// color `p` (`c != p`) is `2·i + bit_i(c)` where `i` is the lowest
/// differing bit index. Roots pretend their parent differs at bit 0.
fn cv_step(c: u64, p: Option<u64>) -> u64 {
    let parent = p.unwrap_or(c ^ 1);
    let diff = c ^ parent;
    debug_assert_ne!(diff, 0, "child and parent share a color");
    let i = u64::from(diff.trailing_zeros());
    2 * i + ((c >> i) & 1)
}

/// Computes a proper **3-coloring** of a rooted forest in O(log* n)
/// communication rounds. Returns the coloring and the measured stats.
///
/// # Errors
///
/// [`AlgoError::InvalidParameters`] if the forest structure is invalid or
/// `ids` has the wrong shape.
pub fn cole_vishkin_forest_coloring(
    g: &Graph,
    forest: &RootedForest,
    ids: &IdAssignment,
) -> Result<(VertexColoring, NetworkStats), AlgoError> {
    forest.validate(g)?;
    if ids.len() != g.num_vertices() {
        return Err(AlgoError::InvalidParameters {
            reason: format!("{} ids for {} vertices", ids.len(), g.num_vertices()),
        });
    }
    let n = g.num_vertices();
    if n == 0 {
        let c = VertexColoring::new(vec![], 1).map_err(|e| AlgoError::InvariantViolated {
            reason: e.to_string(),
        })?;
        return Ok((c, NetworkStats::default()));
    }
    let mut net = Network::new(g);
    let mut colors: Vec<u64> = ids.as_slice().to_vec();

    // Phase 1: bit-index reduction to a ≤ 6-color palette.
    let mut palette = ids.id_space().max(2);
    while palette > 6 {
        let inbox = net.broadcast(&colors)?;
        let mut next = colors.clone();
        for v in g.vertices() {
            let pc = forest.parent[v.index()].map(|p| {
                // Find the parent's color in the inbox (port order).
                let port = g
                    .incidence(v)
                    .iter()
                    .position(|&(u, _)| u == p)
                    // lint: allow(panic, "parent is a neighbor")
                    .expect("parent is a neighbor");
                inbox[v.index()][port]
            });
            next[v.index()] = cv_step(colors[v.index()], pc);
        }
        colors = next;
        // New palette: 2 * bits(palette).
        let bits = 64 - u64::from(u64::leading_zeros(palette - 1));
        palette = (2 * bits).max(6);
    }

    // Phase 2: shift-down + recolor classes 5, 4, 3 into {0, 1, 2}.
    for top in (3..6u64).rev() {
        // Shift down: every vertex adopts its parent's color; roots take
        // a color different from their own current one (mod small).
        let inbox = net.broadcast(&colors)?;
        let mut shifted = colors.clone();
        for v in g.vertices() {
            shifted[v.index()] = match forest.parent[v.index()] {
                Some(p) => {
                    let port = g
                        .incidence(v)
                        .iter()
                        .position(|&(u, _)| u == p)
                        // lint: allow(panic, "parent is a neighbor")
                        .expect("parent is a neighbor");
                    inbox[v.index()][port]
                }
                None => (colors[v.index()] + 1) % 3,
            };
        }
        colors = shifted;
        // Recolor the `top` class: after shift-down, all children of a
        // vertex share its old color, so a vertex sees ≤ 2 distinct
        // neighbor colors (parent's new color + its own old color at the
        // children) — a free color < 3 exists.
        let inbox = net.broadcast(&colors)?;
        for v in g.vertices() {
            if colors[v.index()] == top {
                let used: std::collections::BTreeSet<u64> =
                    inbox[v.index()].iter().copied().collect();
                colors[v.index()] = (0..3)
                    .find(|c| !used.contains(c))
                    // lint: allow(panic, "≤ 2 blocked colors")
                    .expect("≤ 2 blocked colors");
            }
        }
    }

    let out: Vec<Color> = colors.iter().map(|&c| c as Color).collect();
    let coloring = VertexColoring::new(out, 3).map_err(|e| AlgoError::InvariantViolated {
        reason: e.to_string(),
    })?;
    coloring
        .validate(g)
        .map_err(|e| AlgoError::InvariantViolated {
            reason: e.to_string(),
        })?;
    Ok((coloring, net.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    fn run(g: &Graph, seed: u64) -> (VertexColoring, NetworkStats) {
        let forest = RootedForest::root_at_min_ids(g).unwrap();
        let ids = IdAssignment::shuffled(g.num_vertices(), seed);
        cole_vishkin_forest_coloring(g, &forest, &ids).unwrap()
    }

    #[test]
    fn three_colors_trees() {
        for n in [2usize, 5, 50, 500, 5000] {
            let g = generators::random_tree(n, n as u64).unwrap();
            let (c, _) = run(&g, 7);
            assert!(c.is_proper(&g), "n = {n}");
            assert!(c.palette() <= 3);
        }
    }

    #[test]
    fn three_colors_paths_and_forests() {
        let g = generators::path(1000).unwrap();
        let (c, _) = run(&g, 3);
        assert!(c.is_proper(&g));
        // A disconnected forest.
        let g = generators::forest_union(300, 1, 4, 9).unwrap();
        if decolor_graph::properties::is_forest(&g) {
            let (c, _) = run(&g, 4);
            assert!(c.is_proper(&g));
        }
    }

    #[test]
    fn round_count_is_log_star_like() {
        let mut rounds = Vec::new();
        for n in [100usize, 10_000] {
            let g = generators::random_tree(n, 5).unwrap();
            let (_, stats) = run(&g, 5);
            rounds.push(stats.rounds);
        }
        // 100× size increase adds at most 2 rounds.
        assert!(rounds[1] <= rounds[0] + 2, "rounds {rounds:?}");
        assert!(rounds[1] <= 16);
    }

    #[test]
    fn rejects_non_forest() {
        let g = generators::cycle(5).unwrap();
        assert!(RootedForest::root_at_min_ids(&g).is_err());
    }

    #[test]
    fn rejects_bogus_parents() {
        let g = generators::path(3).unwrap();
        let forest = RootedForest {
            parent: vec![None, None, Some(VertexId::new(0))],
        };
        let ids = IdAssignment::sequential(3);
        assert!(cole_vishkin_forest_coloring(&g, &forest, &ids).is_err());
    }

    #[test]
    fn cv_step_distinguishes_neighbors() {
        // Exhaustive check on small colors: if c != p then step values
        // differ whenever both use the true parent chain... (local check:
        // child vs its parent always differ).
        for c in 0u64..64 {
            for p in 0u64..64 {
                if c == p {
                    continue;
                }
                let child = cv_step(c, Some(p));
                let parent_root = cv_step(p, None);
                // Child's differing-bit encoding never equals what the
                // parent computes against ITS parent when that parent is
                // the root-fallback with the same bit index... the real
                // invariant: child value != parent value whenever parent
                // computed with any grandparent g != p.
                for gp in 0u64..64 {
                    if gp == p {
                        continue;
                    }
                    let parent = cv_step(p, Some(gp));
                    if child == parent {
                        // Same index i and same bit value would mean
                        // c and p agree at bit i — contradiction.
                        let i = child / 2;
                        assert_ne!((c >> i) & 1, (p >> i) & 1);
                        panic!("cv_step collision: c={c}, p={p}, gp={gp}");
                    }
                }
                let _ = parent_root;
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = decolor_graph::GraphBuilder::new(1).build();
        let (c, stats) = run(&g, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(stats.messages, 0);
    }
}

//! A randomized distributed (2Δ − 1)-edge-coloring in O(log m) expected
//! rounds — the classic Luby-style contrast to the paper's deterministic
//! algorithms (the intro cites the randomized line of work \[14, 16, 22\];
//! this is its simplest representative, *not* their (1+ε)Δ nibble
//! methods).
//!
//! Each round, every uncolored edge proposes a uniformly random color
//! that is free at both endpoints (the lower endpoint samples, per the
//! usual symmetry-breaking convention); a proposal sticks iff no incident
//! edge proposed the same color in the same round. With palette 2Δ − 1 a
//! constant fraction of edges succeeds per round in expectation.

use decolor_core::AlgoError;
use decolor_graph::coloring::{Color, EdgeColoring};
use decolor_graph::{num, Graph};
use decolor_runtime::{Network, NetworkStats};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs the randomized edge coloring with a seeded RNG (reproducible).
///
/// # Errors
///
/// * [`AlgoError::InvalidParameters`] if `palette < 2Δ − 1`.
/// * [`AlgoError::InvariantViolated`] if the round cap (64·log₂ m + 64)
///   is exceeded — astronomically unlikely with a valid palette.
pub fn randomized_edge_coloring(
    g: &Graph,
    palette: u64,
    seed: u64,
) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    let delta = num::to_u64(g.max_degree());
    let m = g.num_edges();
    if m == 0 {
        let empty = EdgeColoring::new(vec![], 1).map_err(|e| AlgoError::InvariantViolated {
            reason: e.to_string(),
        })?;
        return Ok((empty, NetworkStats::default()));
    }
    let needed = 2 * delta - 1;
    if palette < needed {
        return Err(AlgoError::InvalidParameters {
            reason: format!("palette {palette} below 2Δ − 1 = {needed}"),
        });
    }
    let palette_len = num::to_usize(palette)?;
    let palette32 = num::to_u32(palette_len)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new(g);
    let mut colors: Vec<Option<Color>> = vec![None; m];
    let mut uncolored = m;
    // lint: allow(cast, "ceil of log2 of an edge count is a small positive integer")
    let cap = 64 * num::approx_f64(m.max(2)).log2().ceil() as u64 + 64;

    while uncolored > 0 {
        if net.stats().rounds > cap {
            return Err(AlgoError::InvariantViolated {
                reason: format!("randomized coloring exceeded {cap} rounds"),
            });
        }
        // Propose: the lower endpoint of each uncolored edge samples a
        // color free at both endpoints.
        let mut proposal: Vec<Option<Color>> = vec![None; m];
        for (e, [u, v]) in g.edge_list() {
            if colors[e.index()].is_some() {
                continue;
            }
            let mut used = vec![false; palette_len];
            for w in [u, v] {
                for f in g.incident_edges(w) {
                    if let Some(c) = colors[f.index()] {
                        used[num::usize_from(c)] = true;
                    }
                }
            }
            let free: Vec<Color> = (0..palette32)
                .filter(|&c| !used[num::usize_from(c)])
                .collect();
            proposal[e.index()] = free.choose(&mut rng).copied();
        }
        // One round: endpoints exchange the proposals of their incident
        // edges (the LOCAL broadcast carries the per-vertex lists).
        let per_vertex: Vec<Vec<(u32, Color)>> = g
            .vertices()
            .map(|w| {
                g.incident_edges(w)
                    .filter_map(|f| {
                        // lint: allow(cast, "edge ids fit u32 by the builder's id-width invariant")
                        proposal[f.index()].map(|c| (f.index() as u32, c))
                    })
                    .collect()
            })
            .collect();
        let _inbox = net.broadcast(&per_vertex)?;
        // Accept proposals unique among both endpoints' incident
        // proposals.
        let mut accepted: Vec<(usize, Color)> = Vec::new();
        for (e, [u, v]) in g.edge_list() {
            let Some(cand) = proposal[e.index()] else {
                continue;
            };
            let conflict = [u, v].iter().any(|&w| {
                g.incident_edges(w)
                    .any(|f| f != e && proposal[f.index()] == Some(cand))
            });
            if !conflict {
                accepted.push((e.index(), cand));
            }
        }
        for (i, c) in accepted {
            colors[i] = Some(c);
            uncolored -= 1;
        }
    }

    let out: Vec<Color> = colors
        .into_iter()
        // lint: allow(panic, "loop exits only when all edges are colored")
        .map(|c| c.expect("loop exits only when all edges are colored"))
        .collect();
    let ec = EdgeColoring::new(out, palette).map_err(|e| AlgoError::InvariantViolated {
        reason: e.to_string(),
    })?;
    ec.validate(g).map_err(|e| AlgoError::InvariantViolated {
        reason: e.to_string(),
    })?;
    Ok((ec, net.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    #[test]
    fn colors_random_graphs_with_two_delta_minus_one() {
        for seed in 0..3u64 {
            let g = generators::gnm(100, 400, seed).unwrap();
            let delta = g.max_degree() as u64;
            let (c, stats) = randomized_edge_coloring(&g, 2 * delta - 1, seed).unwrap();
            assert!(c.is_proper(&g));
            assert_eq!(c.palette(), 2 * delta - 1);
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn log_rounds_in_practice() {
        let g = generators::random_regular(1024, 8, 1).unwrap();
        let (c, stats) = randomized_edge_coloring(&g, 15, 2).unwrap();
        assert!(c.is_proper(&g));
        // O(log m) whp: generous cap for the assertion.
        assert!(stats.rounds <= 60, "took {} rounds", stats.rounds);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnm(60, 200, 5).unwrap();
        let delta = g.max_degree() as u64;
        let (a, _) = randomized_edge_coloring(&g, 2 * delta - 1, 9).unwrap();
        let (b, _) = randomized_edge_coloring(&g, 2 * delta - 1, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn larger_palettes_converge_faster() {
        let g = generators::random_regular(256, 10, 3).unwrap();
        let (_, tight) = randomized_edge_coloring(&g, 19, 4).unwrap();
        let (_, loose) = randomized_edge_coloring(&g, 40, 4).unwrap();
        assert!(loose.rounds <= tight.rounds + 2);
    }

    #[test]
    fn rejects_undersized_palette_and_handles_empty() {
        let g = generators::complete(5).unwrap();
        assert!(randomized_edge_coloring(&g, 5, 0).is_err());
        let e = decolor_graph::GraphBuilder::new(3).build();
        let (c, _) = randomized_edge_coloring(&e, 1, 0).unwrap();
        assert!(c.is_empty());
    }
}

//! Distributed baselines: the "previous results" comparators.
//!
//! * [`two_delta_minus_one_edge_coloring`] — the (2Δ − 1)-edge-coloring
//!   family of Panconesi–Rizzi \[33\] and its successors \[3, 17\], realized
//!   through the line-graph pipeline of `decolor-core` (Linial + reduction
//!   on L(G)). Per DESIGN.md §3, the measured rounds have the substituted
//!   subroutine's shape; the color count (2Δ − 1) is exact.
//! * [`no_connector_edge_coloring`] — the "don't use connectors at all"
//!   comparator for Table 1: colors L(G) directly with Δ_L + 1 = 2Δ − 1
//!   colors; this is what the table's baselines degenerate to when asked
//!   for fewer than 4Δ colors.

use decolor_core::delta_plus_one::{edge_coloring_with_target, SubroutineConfig};
use decolor_core::AlgoError;
use decolor_graph::coloring::EdgeColoring;
use decolor_graph::Graph;
use decolor_runtime::NetworkStats;

/// The classical distributed (2Δ − 1)-edge-coloring baseline.
///
/// # Errors
///
/// Propagates subroutine errors (none for well-formed simple graphs).
pub fn two_delta_minus_one_edge_coloring(
    g: &Graph,
) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    let delta = g.max_degree() as u64;
    let target = if delta == 0 { 1 } else { 2 * delta - 1 };
    edge_coloring_with_target(g, target, SubroutineConfig::default())
}

/// Alias used by the table harness: coloring the line graph directly with
/// its (Δ_L + 1)-coloring — no connectors involved.
///
/// # Errors
///
/// Propagates subroutine errors.
pub fn no_connector_edge_coloring(g: &Graph) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    two_delta_minus_one_edge_coloring(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    #[test]
    fn two_delta_minus_one_exact_palette() {
        let g = generators::random_regular(80, 10, 1).unwrap();
        let (c, stats) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.palette(), 19);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn handles_degenerate_graphs() {
        let g = decolor_graph::GraphBuilder::new(3).build();
        let (c, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_empty());
        let g = generators::path(2).unwrap();
        let (c, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.palette(), 1);
    }

    #[test]
    fn uses_more_colors_than_misra_gries_but_is_distributed() {
        let g = generators::gnm(60, 240, 2).unwrap();
        let (dist, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        let central = crate::misra_gries::misra_gries_edge_coloring(&g);
        assert!(central.palette() <= dist.palette());
    }
}

//! Distributed baselines: the "previous results" comparators.
//!
//! * [`two_delta_minus_one_edge_coloring`] — the (2Δ − 1)-edge-coloring
//!   family of Panconesi–Rizzi \[33\] and its successors \[3, 17\], realized
//!   **directly in edge space** (`decolor-core`'s
//!   [`edge_space`](decolor_core::edge_space): each edge is an agent
//!   exchanging colors over its ≤ 2Δ − 2 incident edges) — the decision
//!   sequence of the line-graph pipeline without ever materializing L(G),
//!   which is what lets Tables 1–2 sweep Δ ≥ 128. Per DESIGN.md §3, the
//!   measured rounds have the substituted subroutine's shape; the color
//!   count (2Δ − 1) is exact.
//! * [`two_delta_minus_one_via_line_graph`] — the original L(G)
//!   materialization, kept as the reference implementation (the
//!   equivalence of the two is asserted in tests here and in
//!   `decolor-core`).
//! * [`no_connector_edge_coloring`] — the "don't use connectors at all"
//!   comparator for Table 1: colors edge space directly with
//!   Δ_L + 1 = 2Δ − 1 colors; this is what the table's baselines
//!   degenerate to when asked for fewer than 4Δ colors.

use decolor_core::delta_plus_one::{edge_coloring_with_target, SubroutineConfig};
use decolor_core::edge_space::edge_coloring_direct;
use decolor_core::AlgoError;
use decolor_graph::coloring::EdgeColoring;
use decolor_graph::{num, Graph};
use decolor_runtime::NetworkStats;

/// The classical distributed (2Δ − 1)-edge-coloring baseline, simulated
/// directly on edge endpoints.
///
/// # Errors
///
/// Propagates subroutine errors (none for well-formed simple graphs).
pub fn two_delta_minus_one_edge_coloring(
    g: &Graph,
) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    let delta = num::to_u64(g.max_degree());
    let target = if delta == 0 { 1 } else { 2 * delta - 1 };
    edge_coloring_direct(g, target, SubroutineConfig::default())
}

/// The same baseline through the materialized line graph (reference
/// implementation; O(Σ deg²) memory).
///
/// # Errors
///
/// Propagates subroutine errors (none for well-formed simple graphs).
pub fn two_delta_minus_one_via_line_graph(
    g: &Graph,
) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    let delta = num::to_u64(g.max_degree());
    let target = if delta == 0 { 1 } else { 2 * delta - 1 };
    edge_coloring_with_target(g, target, SubroutineConfig::default())
}

/// Alias used by the table harness: coloring the line graph directly with
/// its (Δ_L + 1)-coloring — no connectors involved.
///
/// # Errors
///
/// Propagates subroutine errors.
pub fn no_connector_edge_coloring(g: &Graph) -> Result<(EdgeColoring, NetworkStats), AlgoError> {
    two_delta_minus_one_edge_coloring(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    #[test]
    fn two_delta_minus_one_exact_palette() {
        let g = generators::random_regular(80, 10, 1).unwrap();
        let (c, stats) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.palette(), 19);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn handles_degenerate_graphs() {
        let g = decolor_graph::GraphBuilder::new(3).build();
        let (c, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_empty());
        let g = generators::path(2).unwrap();
        let (c, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.palette(), 1);
    }

    #[test]
    fn uses_more_colors_than_misra_gries_but_is_distributed() {
        let g = generators::gnm(60, 240, 2).unwrap();
        let (dist, _) = two_delta_minus_one_edge_coloring(&g).unwrap();
        let central = crate::misra_gries::misra_gries_edge_coloring(&g);
        assert!(central.palette() <= dist.palette());
    }

    #[test]
    fn direct_and_line_graph_realizations_agree() {
        for seed in 0..3u64 {
            let g = generators::gnm(70, 280, seed).unwrap();
            let (direct, ds) = two_delta_minus_one_edge_coloring(&g).unwrap();
            let (via_lg, ls) = two_delta_minus_one_via_line_graph(&g).unwrap();
            assert_eq!(direct.as_slice(), via_lg.as_slice());
            assert_eq!(ds.rounds, ls.rounds);
        }
    }

    #[test]
    fn direct_realization_reaches_delta_128() {
        // The line-graph pipeline would materialize ~Σ C(deg, 2) ≈ 2·10⁶
        // adjacencies here; the direct agent view stays O(n + m).
        let g = generators::random_regular(256, 128, 9).unwrap();
        let (c, stats) = two_delta_minus_one_edge_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.palette(), 255);
        assert!(stats.rounds > 0);
    }
}

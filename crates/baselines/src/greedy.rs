//! Centralized greedy colorings — the classical color-count floors.

use decolor_graph::coloring::{Color, EdgeColoring, VertexColoring};
use decolor_graph::{num, Graph, VertexId};

/// Greedy vertex coloring in the given order: each vertex takes the
/// smallest color unused by its already-colored neighbors. Uses at most
/// Δ + 1 colors for any order, and `degeneracy + 1` colors along a
/// degeneracy ordering.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertices.
///
/// ```rust
/// use decolor_graph::generators;
/// use decolor_baselines::greedy::greedy_vertex_coloring;
/// let g = generators::complete(5).unwrap();
/// let order: Vec<_> = g.vertices().collect();
/// let c = greedy_vertex_coloring(&g, &order);
/// assert!(c.is_proper(&g));
/// assert_eq!(c.distinct_colors(), 5);
/// ```
pub fn greedy_vertex_coloring(g: &Graph, order: &[VertexId]) -> VertexColoring {
    assert_eq!(
        order.len(),
        g.num_vertices(),
        "order must cover all vertices"
    );
    let mut colors: Vec<Option<Color>> = vec![None; g.num_vertices()];
    let palette = num::to_u64(g.max_degree()) + 1;
    for &v in order {
        // lint: allow(cast, "palette <= 2 * max_degree + 1, which started as a usize")
        let mut used = vec![false; palette as usize];
        for u in g.neighbors(v) {
            if let Some(c) = colors[u.index()] {
                used[num::usize_from(c)] = true;
            }
        }
        let free = used
            .iter()
            .position(|&t| !t)
            // lint: allow(panic, "Δ neighbors cannot block Δ + 1 colors")
            .expect("Δ neighbors cannot block Δ + 1 colors");
        assert!(colors[v.index()].is_none(), "order repeats vertex {v}");
        colors[v.index()] = Some(free as Color);
    }
    let colors: Vec<Color> = colors
        .into_iter()
        // lint: allow(panic, "all vertices ordered")
        .map(|c| c.expect("all vertices ordered"))
        .collect();
    // lint: allow(panic, "greedy colors fit the palette")
    VertexColoring::new(colors, palette).expect("greedy colors fit the palette")
}

/// Greedy vertex coloring along a degeneracy ordering — ≤ degeneracy + 1
/// colors, the strongest easy centralized bound.
pub fn greedy_degeneracy_coloring(g: &Graph) -> VertexColoring {
    let ord = decolor_graph::properties::degeneracy_ordering(g);
    // Color in REVERSE elimination order, so each vertex has ≤ degeneracy
    // colored neighbors when processed.
    let order: Vec<VertexId> = ord.order.iter().rev().copied().collect();
    let c = greedy_vertex_coloring(g, &order);
    c.compacted()
}

/// Greedy edge coloring in edge-id order: ≤ 2Δ − 1 colors.
///
/// ```rust
/// use decolor_graph::generators;
/// use decolor_baselines::greedy::greedy_edge_coloring;
/// let g = generators::gnm(50, 200, 1).unwrap();
/// let c = greedy_edge_coloring(&g);
/// assert!(c.is_proper(&g));
/// assert!(c.palette() <= 2 * g.max_degree() as u64 - 1);
/// ```
pub fn greedy_edge_coloring(g: &Graph) -> EdgeColoring {
    let delta = num::to_u64(g.max_degree());
    let palette = if delta == 0 { 1 } else { 2 * delta - 1 };
    let mut colors: Vec<Option<Color>> = vec![None; g.num_edges()];
    for (e, [u, v]) in g.edge_list() {
        // lint: allow(cast, "palette <= 2 * max_degree + 1, which started as a usize")
        let mut used = vec![false; palette as usize];
        for w in [u, v] {
            for f in g.incident_edges(w) {
                if let Some(c) = colors[f.index()] {
                    used[num::usize_from(c)] = true;
                }
            }
        }
        let free = used
            .iter()
            .position(|&t| !t)
            // lint: allow(panic, "2Δ − 2 incident edges cannot block 2Δ − 1")
            .expect("2Δ − 2 incident edges cannot block 2Δ − 1");
        colors[e.index()] = Some(free as Color);
    }
    let colors: Vec<Color> = colors
        .into_iter()
        // lint: allow(panic, "all edges visited")
        .map(|c| c.expect("all edges visited"))
        .collect();
    // lint: allow(panic, "greedy colors fit the palette")
    EdgeColoring::new(colors, palette).expect("greedy colors fit the palette")
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    #[test]
    fn greedy_vertex_within_delta_plus_one() {
        for seed in 0..4u64 {
            let g = generators::gnm(100, 400, seed).unwrap();
            let order: Vec<VertexId> = g.vertices().collect();
            let c = greedy_vertex_coloring(&g, &order);
            assert!(c.is_proper(&g));
            assert!(c.palette() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn degeneracy_coloring_beats_delta_on_sparse() {
        let g = generators::forest_union(300, 2, 10, 1).unwrap();
        let c = greedy_degeneracy_coloring(&g);
        assert!(c.is_proper(&g));
        let degeneracy = decolor_graph::properties::degeneracy_ordering(&g).degeneracy as u64;
        assert!(c.distinct_colors() as u64 <= degeneracy + 1);
        assert!((degeneracy + 1) < g.max_degree() as u64 + 1);
    }

    #[test]
    fn tree_gets_two_colors() {
        let g = generators::random_tree(100, 2).unwrap();
        let c = greedy_degeneracy_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.distinct_colors(), 2);
    }

    #[test]
    fn greedy_edge_on_various_graphs() {
        for g in [
            generators::complete(8).unwrap(),
            generators::cycle(9).unwrap(),
            generators::star(12).unwrap(),
            generators::gnm(60, 250, 3).unwrap(),
        ] {
            let c = greedy_edge_coloring(&g);
            assert!(c.is_proper(&g));
            assert!(c.palette() <= (2 * g.max_degree() as u64).saturating_sub(1).max(1));
        }
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn short_order_panics() {
        let g = generators::path(3).unwrap();
        let _ = greedy_vertex_coloring(&g, &[VertexId::new(0)]);
    }
}

//! # decolor-baselines
//!
//! Baseline coloring algorithms the paper compares against (§1.4 and the
//! "previous results" columns of Tables 1–2):
//!
//! * [`greedy`] — centralized greedy vertex ((Δ+1) / (degeneracy+1)) and
//!   edge ((2Δ−1)) colorings: the color-count floor any distributed
//!   algorithm is measured against.
//! * [`misra_gries`] — the centralized Misra–Gries implementation of
//!   Vizing's theorem: every simple graph is (Δ+1)-edge-colorable \[36\].
//!   This is the "optimal colors, centralized" reference point.
//! * [`distributed`] — the distributed (2Δ−1)-edge-coloring in the
//!   Panconesi–Rizzi round-shape class \[33, 3, 17\], realized through the
//!   line-graph pipeline, plus the "no connectors" comparator used by the
//!   table harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cole_vishkin;
pub mod distributed;
pub mod greedy;
pub mod misra_gries;
pub mod randomized;

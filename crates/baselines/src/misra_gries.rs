//! **Misra–Gries (Δ + 1)-edge-coloring** — the constructive form of
//! Vizing's theorem \[36\] the paper cites as the existential optimum
//! ("any graph admits an edge-coloring with Δ + 1 colors").
//!
//! Centralized and sequential (O(nm)); it provides the color-count floor
//! the distributed algorithms are measured against in EXPERIMENTS.md.
//!
//! The algorithm colors edges one by one. For an uncolored edge (u, v) it
//! builds a *maximal fan* of u starting at v, picks a color `c` free at
//! `u` and `d` free at the fan's last vertex, inverts the maximal
//! cd-alternating path through `u`, rotates a fan prefix that is still
//! valid, and completes with `d`.

use decolor_graph::coloring::{Color, EdgeColoring};
use decolor_graph::{num, EdgeId, Graph, VertexId};

/// Internal coloring state with O(1) free-color/used-edge lookups.
struct State<'g> {
    g: &'g Graph,
    palette: usize,
    /// color per edge (None = uncolored)
    color: Vec<Option<Color>>,
    /// used[v * palette + c] = edge at v colored c
    used: Vec<Option<EdgeId>>,
}

impl<'g> State<'g> {
    fn new(g: &'g Graph, palette: usize) -> Self {
        State {
            g,
            palette,
            color: vec![None; g.num_edges()],
            used: vec![None; g.num_vertices() * palette],
        }
    }

    #[inline]
    fn edge_with(&self, v: VertexId, c: Color) -> Option<EdgeId> {
        self.used[v.index() * self.palette + num::usize_from(c)]
    }

    #[inline]
    fn is_free(&self, v: VertexId, c: Color) -> bool {
        self.edge_with(v, c).is_none()
    }

    fn free_color(&self, v: VertexId) -> Color {
        // lint: allow(cast, "palette = \u{394} + 1 and vertex degrees are u32, so it fits")
        (0..self.palette as u32)
            .find(|&c| self.is_free(v, c))
            // lint: allow(panic, "degree ≤ Δ leaves a free color in a Δ + 1 palette")
            .expect("degree ≤ Δ leaves a free color in a Δ + 1 palette")
    }

    fn set(&mut self, e: EdgeId, c: Option<Color>) {
        let [u, v] = self.g.endpoints(e);
        if let Some(old) = self.color[e.index()] {
            self.used[u.index() * self.palette + num::usize_from(old)] = None;
            self.used[v.index() * self.palette + num::usize_from(old)] = None;
        }
        self.color[e.index()] = c;
        if let Some(new) = c {
            debug_assert!(self.is_free(u, new) && self.is_free(v, new));
            self.used[u.index() * self.palette + num::usize_from(new)] = Some(e);
            self.used[v.index() * self.palette + num::usize_from(new)] = Some(e);
        }
    }

    /// Maximal fan of `u` starting at `v`: a sequence of distinct
    /// neighbors f₀ = v, f₁, … where color(u, f_{i+1}) is free at f_i.
    fn maximal_fan(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let mut fan = vec![v];
        let mut in_fan: std::collections::BTreeSet<VertexId> = [v].into_iter().collect();
        loop {
            // lint: allow(panic, "fan nonempty")
            let last = *fan.last().expect("fan nonempty");
            let mut extended = false;
            for (w, e) in self.g.incidence(u).iter().copied() {
                if in_fan.contains(&w) {
                    continue;
                }
                if let Some(c) = self.color[e.index()] {
                    if self.is_free(last, c) {
                        fan.push(w);
                        in_fan.insert(w);
                        extended = true;
                        break;
                    }
                }
            }
            if !extended {
                return fan;
            }
        }
    }

    /// Inverts the maximal cd-alternating path starting at `u` (which has
    /// `c` free): edges colored d, c, d, … along the path swap colors.
    fn invert_cd_path(&mut self, u: VertexId, c: Color, d: Color) {
        // Collect the path first (walking while flipping would corrupt
        // lookups), then flip atomically.
        let mut path = Vec::new();
        let mut cur = u;
        let mut want = d;
        let mut prev_edge: Option<EdgeId> = None;
        while let Some(e) = self.edge_with(cur, want) {
            if Some(e) == prev_edge {
                break;
            }
            path.push(e);
            cur = self
                .g
                .other_endpoint(e, cur)
                // lint: allow(panic, "edge_with returns an edge incident on cur")
                .expect("edge_with returns an edge incident on cur");
            prev_edge = Some(e);
            want = if want == d { c } else { d };
        }
        // Uncolor the whole path, then recolor flipped.
        let old: Vec<Color> = path
            .iter()
            // lint: allow(panic, "path edges are colored")
            .map(|&e| self.color[e.index()].expect("path edges are colored"))
            .collect();
        for &e in &path {
            self.set(e, None);
        }
        for (&e, &oc) in path.iter().zip(&old) {
            self.set(e, Some(if oc == c { d } else { c }));
        }
    }

    /// Rotates the fan prefix `fan[0..=j]`: edge (u, fan[i]) takes the old
    /// color of (u, fan[i+1]); (u, fan[j]) is left uncolored.
    fn rotate_fan(&mut self, u: VertexId, fan: &[VertexId], j: usize) {
        for i in 0..j {
            let e_i = self.edge_between(u, fan[i]);
            let e_next = self.edge_between(u, fan[i + 1]);
            // lint: allow(panic, "fan edges beyond 0 are colored")
            let next_color = self.color[e_next.index()].expect("fan edges beyond 0 are colored");
            self.set(e_next, None);
            self.set(e_i, Some(next_color));
        }
    }

    fn edge_between(&self, u: VertexId, w: VertexId) -> EdgeId {
        self.g
            .incidence(u)
            .iter()
            .find(|&&(x, _)| x == w)
            .map(|&(_, e)| e)
            // lint: allow(panic, "fan vertices are neighbors of u")
            .expect("fan vertices are neighbors of u")
    }
}

/// Computes a proper (Δ + 1)-edge-coloring of any simple graph.
///
/// # Panics
///
/// Panics if `g` has parallel edges (Vizing's bound for multigraphs is
/// Δ + multiplicity, out of scope here).
///
/// ```rust
/// use decolor_graph::generators;
/// use decolor_baselines::misra_gries::misra_gries_edge_coloring;
/// let g = generators::complete(6).unwrap();
/// let c = misra_gries_edge_coloring(&g);
/// assert!(c.is_proper(&g));
/// assert!(c.palette() <= 6); // Δ + 1 = 6
/// ```
pub fn misra_gries_edge_coloring(g: &Graph) -> EdgeColoring {
    assert!(
        !g.has_parallel_edges(),
        "Misra–Gries requires a simple graph"
    );
    let delta = g.max_degree();
    if g.num_edges() == 0 {
        // lint: allow(panic, "empty coloring is valid")
        return EdgeColoring::new(vec![], 1).expect("empty coloring is valid");
    }
    let palette = delta + 1;
    let mut st = State::new(g, palette);

    for (e0, [u, v]) in g.edge_list() {
        debug_assert!(st.color[e0.index()].is_none());
        let fan = st.maximal_fan(u, v);
        let c = st.free_color(u);
        // lint: allow(panic, "fan nonempty")
        let last = *fan.last().expect("fan nonempty");
        let d = st.free_color(last);
        if c != d {
            st.invert_cd_path(u, c, d);
        }
        // Find a fan prefix that is still valid under the current colors
        // whose last vertex has d free; the Vizing argument guarantees one
        // exists after the inversion.
        let mut w = None;
        for (j, &fj) in fan.iter().enumerate() {
            if j > 0 {
                let e_j = st.edge_between(u, fan[j]);
                let cj = st.color[e_j.index()];
                let valid = match cj {
                    Some(col) => st.is_free(fan[j - 1], col),
                    None => false,
                };
                if !valid {
                    break;
                }
            }
            if st.is_free(fj, d) {
                w = Some(j);
                break;
            }
        }
        // lint: allow(panic, "Vizing fan argument guarantees a rotatable prefix")
        let j = w.expect("Vizing fan argument guarantees a rotatable prefix");
        st.rotate_fan(u, &fan, j);
        debug_assert!(st.is_free(u, d), "d must be free at u after the inversion");
        let e_w = st.edge_between(u, fan[j]);
        st.set(e_w, Some(d));
    }

    let colors: Vec<Color> = st
        .color
        .into_iter()
        // lint: allow(panic, "all edges colored")
        .map(|c| c.expect("all edges colored"))
        .collect();
    // lint: allow(panic, "colors fit palette")
    let ec = EdgeColoring::new(colors, num::to_u64(palette)).expect("colors fit palette");
    debug_assert!(ec.is_proper(g));
    ec
}

#[cfg(test)]
mod tests {
    use super::*;
    use decolor_graph::generators;

    #[test]
    fn delta_plus_one_on_many_graphs() {
        for (n, m, seed) in [
            (30usize, 100usize, 1u64),
            (60, 300, 2),
            (80, 200, 3),
            (100, 600, 4),
            (50, 50, 5),
        ] {
            let g = generators::gnm(n, m, seed).unwrap();
            let c = misra_gries_edge_coloring(&g);
            assert!(c.is_proper(&g), "improper for seed {seed}");
            assert!(c.palette() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn bipartite_graphs_use_delta_or_delta_plus_one() {
        let g = generators::complete_bipartite(7, 7).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
        assert!(c.palette() <= 8);
    }

    #[test]
    fn odd_cycle_needs_three() {
        let g = generators::cycle(7).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.distinct_colors(), 3); // class-2 graph: Δ + 1 = 3
    }

    #[test]
    fn even_cycle_and_path() {
        let g = generators::cycle(8).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
        let g = generators::path(10).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
        assert!(c.distinct_colors() <= 3);
    }

    #[test]
    fn complete_graphs() {
        for n in [3usize, 4, 5, 6, 7, 8, 9] {
            let g = generators::complete(n).unwrap();
            let c = misra_gries_edge_coloring(&g);
            assert!(c.is_proper(&g), "K{n} improper");
            assert!(c.palette() <= n as u64, "K{n} used too many colors");
        }
    }

    #[test]
    fn regular_graphs_stress() {
        for seed in 0..5u64 {
            let g = generators::random_regular(40, 7, seed).unwrap();
            let c = misra_gries_edge_coloring(&g);
            assert!(c.is_proper(&g));
            assert!(c.palette() <= 8);
        }
    }

    #[test]
    fn stars_and_trees_are_class_one() {
        let g = generators::star(20).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.distinct_colors(), 19);
        let g = generators::random_tree(200, 6).unwrap();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn edgeless_graph() {
        let g = decolor_graph::GraphBuilder::new(4).build();
        let c = misra_gries_edge_coloring(&g);
        assert!(c.is_empty());
    }
}

//! Offline shim for the subset of `serde` used by this workspace (see
//! `vendor/README.md`).
//!
//! Instead of the real serde data model (visitors, `Serializer` /
//! `Deserializer` traits), this shim round-trips through a single
//! self-describing [`Value`] tree, which is all `serde_json` needs here:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`].
//! * [`Deserialize`] — rebuild `Self` from a [`&Value`](Value).
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` — re-exported from
//!   the companion `serde_derive` proc-macro crate; supports structs with
//!   named fields and newtype structs (serialized transparently), which
//!   covers every derive in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

/// Serialization / deserialization error: a human-readable message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Returns the fields of an object, or an error naming `context`.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a field of an object (used by derived `Deserialize`).
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::new(concat!("number out of range for ", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::new(concat!("number out of range for ", stringify!($t)))),
                    ref other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::new(concat!("number out of range for ", stringify!($t)))),
                    Value::U64(x) => <$t>::try_from(x)
                        .map_err(|_| Error::new(concat!("number out of range for ", stringify!($t)))),
                    ref other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(usize, u64, u32, u16, u8);
impl_serde_int!(isize, i64, i32, i16, i8);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            Value::Array(items) => Err(Error::new(format!(
                "expected 2-element array, found {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&3usize.to_value()).unwrap(), 3);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (1, 2)];
        assert_eq!(
            Vec::<(usize, usize)>::from_value(&pairs.to_value()).unwrap(),
            pairs
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(usize::from_value(&Value::String("x".into())).is_err());
        assert!(Value::Null.get_field("n").is_err());
    }
}

//! Offline shim for the subset of `proptest` used by this workspace (see
//! `vendor/README.md`).
//!
//! Supports the [`proptest!`] macro form used in the test suites:
//!
//! ```text
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(24))]
//!     #[test]
//!     fn name(a in 0usize..60, seed in 0u64..1000) { ... }
//! }
//! ```
//!
//! Each test runs `cases` times with inputs drawn from the range
//! [`Strategy`]s by a deterministic per-case splitmix64 generator, so runs
//! are reproducible. No shrinking: on failure the assert message reports
//! the case number, and re-running reproduces it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for case number `case` of a test.
    pub fn for_case(case: u32) -> Self {
        // Distinct, fixed stream per case; goldens the whole suite.
        TestRng {
            state: 0xDEC0_1043 ^ (u64::from(case) << 32 | u64::from(case)),
        }
    }

    /// Returns the next raw value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_strategy_range!(usize, u64, u32, u16, u8);

/// Everything a `use proptest::prelude::*;` test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Property-test entry point; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Drawn values respect their ranges and are deterministic.
        #[test]
        fn ranges_respected(n in 2usize..60, seed in 0u64..1000) {
            prop_assert!((2..60).contains(&n));
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn per_case_streams_are_deterministic() {
        let a = TestRng::for_case(3).next_u64();
        let b = TestRng::for_case(3).next_u64();
        let c = TestRng::for_case(4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the vendored `serde` shim's
//! `Value`-based data model (see `vendor/README.md`).
//!
//! Supported shapes — the ones used in this workspace:
//!
//! * structs with named fields → JSON objects, field order preserved;
//! * newtype structs (one unnamed field) → serialized transparently.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline); unsupported shapes (enums, generics, multi-field
//! tuple structs) panic with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a deriving struct.
enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// A newtype struct (exactly one unnamed field).
    Newtype,
}

/// Parses `input` (the item a derive is attached to) into a struct name
/// and field shape. Panics on unsupported shapes.
fn parse_struct(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                other => panic!("serde_derive shim: expected struct name, got {other:?}"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("serde_derive shim: enums are not supported")
            }
            Some(tt) => panic!("serde_derive shim: unexpected token {tt}"),
            None => panic!("serde_derive shim: ran out of tokens before `struct`"),
        }
    };
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, Shape::Named(named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(g.stream());
            assert!(
                n == 1,
                "serde_derive shim: tuple structs with {n} fields are not supported (only newtypes)"
            );
            (name, Shape::Newtype)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic structs are not supported")
        }
        other => panic!("serde_derive shim: unexpected struct body {other:?}"),
    }
}

/// Extracts field names from the token stream of a brace-delimited field
/// list. Commas inside generic arguments (`BTreeMap<K, V>`) are skipped by
/// tracking `<`/`>` depth; parenthesized/bracketed types are opaque groups.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut expecting_name = true;
    let mut last_ident: Option<String> = None;
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                iter.next(); // field attribute / doc comment
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 && expecting_name => {
                // `::` only occurs inside types, i.e. after the name `:`.
                fields.push(last_ident.take().expect("field name before `:`"));
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expecting_name = true;
                last_ident = None;
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Counts top-level fields of a paren-delimited (tuple struct) field list.
fn tuple_field_count(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => commas += 1,
            _ => any = true,
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

/// `#[derive(Serialize)]`: emits an `impl ::serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields = ::std::vec::Vec::new(); {pushes} \
                 ::serde::Value::Object(__fields)"
            )
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`: emits an `impl ::serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.get_field({f:?})?)?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}

//! Offline shim for the subset of `rayon` used by this workspace (see
//! `vendor/README.md`).
//!
//! `par_iter()` returns a plain sequential [`std::slice::Iter`], so every
//! adapter (`map`, `filter`, `collect`, …) is the std `Iterator` API and
//! results are bit-identical to a sequential run. Swapping in the real
//! rayon later only changes execution, not semantics — the call sites are
//! written against the rayon names. ROADMAP "Open items" tracks restoring
//! true parallelism here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The subset of the rayon prelude used in this workspace.
pub mod prelude {
    /// `.par_iter()` over `&self`, as in rayon's trait of the same name.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced (sequential in this shim).
        type Iter: Iterator<Item = Self::Item>;
        /// The reference item type.
        type Item: 'data;

        /// Returns a "parallel" (here: sequential) iterator over `&self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}

//! Offline shim for the subset of `rayon` used by this workspace (see
//! `vendor/README.md`) — now with **real parallelism**.
//!
//! `par_iter()` returns a slice-backed parallel iterator whose
//! `map(..).collect()` splits the input into contiguous chunks and runs
//! them on scoped worker threads (`std::thread::scope`), with `Send +
//! Sync` bounds matching real rayon. Chunk results are concatenated in
//! input order, so the output is **bit-identical** to a sequential run —
//! swapping in the real rayon later only changes scheduling, not
//! semantics.
//!
//! Execution mode is controlled by the `DECOLOR_THREADS` environment
//! variable: unset → one worker per available core; `1` (or `0`) → plain
//! sequential fallback; `N > 1` → `N` workers. An **unparsable** value
//! falls back to the available-core count — the same default as unset —
//! with a one-time warning on stderr (it used to silently degrade to a
//! single thread, turning a typo into a 1-thread run).
//! Nested `par_iter` calls issued *from inside a worker* run sequentially
//! on that worker, so recursive fan-outs (star partition, Theorem 5.4)
//! keep a bounded thread count instead of multiplying per level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::Once;

thread_local! {
    /// Set on worker threads so nested fan-outs stay sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override installed by [`with_num_threads`] (tests).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Warns exactly once per process about an unparsable `DECOLOR_THREADS`.
static BAD_THREAD_SPEC_WARNING: Once = Once::new();

/// The pool size requested by a `DECOLOR_THREADS` value, or `None` when
/// the value does not parse as an integer (`"0"` parses, and means
/// sequential like `"1"`).
fn parse_thread_spec(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// One worker per available core — the default for unset (and, with a
/// warning, unparsable) `DECOLOR_THREADS`.
fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Resolves a raw `DECOLOR_THREADS` reading (or `None` when unset) to a
/// pool size: parsable values win, everything else — including typos,
/// which warn once per process — defaults to the available-core count.
/// Separated from the environment so the fallback is testable without
/// mutating process-global state.
fn resolve_thread_spec(raw: Option<&str>) -> usize {
    match raw {
        Some(raw) => parse_thread_spec(raw).unwrap_or_else(|| {
            BAD_THREAD_SPEC_WARNING.call_once(|| {
                eprintln!(
                    "warning: DECOLOR_THREADS={raw:?} is not an integer; \
                     falling back to all {} available cores",
                    available_cores()
                );
            });
            available_cores()
        }),
        None => available_cores(),
    }
}

/// The number of worker threads a `collect` issued from this thread would
/// use: the [`with_num_threads`] override if one is installed, else
/// `DECOLOR_THREADS`, else the number of available cores. An unparsable
/// `DECOLOR_THREADS` also resolves to the available-core count, with a
/// one-time stderr warning. Inside a worker thread this is 1 (nested
/// fan-outs are sequential).
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    resolve_thread_spec(std::env::var("DECOLOR_THREADS").ok().as_deref())
}

/// Runs `f` with the calling thread's pool size forced to `threads`
/// (shim extension, used by the equivalence tests to exercise the worker
/// pool regardless of machine size or `DECOLOR_THREADS`).
pub fn with_num_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_OVERRIDE.with(|o| o.replace(threads.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Maps `op` over `items` preserving order: sequentially when the pool
/// has one thread (or we are already on a worker), otherwise on scoped
/// worker threads over contiguous chunks.
fn chunked_map<'data, T, R, F>(items: &'data [T], op: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(op).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks = items.chunks(chunk_size);
    let first = chunks.next().expect("items is non-empty");
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    chunk.iter().map(op).collect::<Vec<R>>()
                })
            })
            .collect();
        // The caller works on the first chunk while workers run.
        out.push(first.iter().map(op).collect());
        for handle in handles {
            match handle.join() {
                Ok(res) => out.push(res),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// The subset of the rayon prelude used in this workspace.
pub mod prelude {
    use super::chunked_map;

    /// A parallel iterator over a slice (rayon's `par_iter()` shape).
    #[derive(Debug)]
    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    /// A mapped parallel iterator; terminate with [`ParMap::collect`].
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        op: F,
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Applies `op` to every element, in parallel at `collect` time.
        pub fn map<R, F>(self, op: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                slice: self.slice,
                op,
            }
        }

        /// Applies `op` to every element for its side effects, in
        /// parallel (rayon's `for_each`).
        pub fn for_each<F>(self, op: F)
        where
            F: Fn(&'data T) + Sync,
        {
            chunked_map(self.slice, &op);
        }
    }

    impl<'data, T, F> ParMap<'data, T, F> {
        /// Runs the map on the worker pool and collects the results in
        /// input order.
        pub fn collect<R, C>(self) -> C
        where
            T: Sync,
            R: Send,
            F: Fn(&'data T) -> R + Sync,
            C: FromIterator<R>,
        {
            chunked_map(self.slice, &self.op).into_iter().collect()
        }
    }

    /// `.par_iter()` over `&self`, as in rayon's trait of the same name.
    pub trait IntoParallelRefIterator<'data> {
        /// The reference item type.
        type Item: 'data;

        /// Returns a parallel iterator over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_num_threads;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn pool_preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            let parallel: Vec<u64> =
                with_num_threads(threads, || items.par_iter().map(|x| x * x + 1).collect());
            assert_eq!(parallel, sequential, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn pool_handles_more_threads_than_items() {
        let items = vec![5u8, 9];
        let out: Vec<u8> = with_num_threads(16, || items.par_iter().map(|x| x + 1).collect());
        assert_eq!(out, vec![6, 10]);
    }

    #[test]
    fn nested_fanouts_run_on_the_outer_pool() {
        let outer: Vec<u32> = (0..8).collect();
        let out: Vec<u32> = with_num_threads(4, || {
            outer
                .par_iter()
                .map(|&x| {
                    let inner: Vec<u32> = (0..4).collect();
                    let parts: Vec<u32> = inner.par_iter().map(|&y| x + y).collect();
                    parts.iter().sum()
                })
                .collect()
        });
        let expected: Vec<u32> = (0..8).map(|x| 4 * x + 6).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn workers_report_a_sequential_nested_pool() {
        let items: Vec<u32> = (0..16).collect();
        let nested_threads: Vec<usize> = with_num_threads(4, || {
            items
                .par_iter()
                .map(|_| super::current_num_threads())
                .collect()
        });
        // The caller's own chunk sees the pool; worker chunks see 1.
        assert!(nested_threads.contains(&1));
        assert!(nested_threads.iter().all(|&t| t == 1 || t == 4));
    }

    #[test]
    fn collects_into_results() {
        let items: Vec<i32> = (0..100).collect();
        let collected: Result<Vec<i32>, String> =
            with_num_threads(3, || items.par_iter().map(|&x| Ok(x)).collect());
        assert_eq!(collected.unwrap().len(), 100);
    }

    #[test]
    fn thread_spec_parsing() {
        assert_eq!(super::parse_thread_spec("4"), Some(4));
        assert_eq!(super::parse_thread_spec(" 8 "), Some(8));
        // 0 and 1 both mean sequential.
        assert_eq!(super::parse_thread_spec("0"), Some(1));
        assert_eq!(super::parse_thread_spec("1"), Some(1));
        // Typos no longer silently degrade to one thread: they report
        // unparsable, and the caller falls back to all cores.
        assert_eq!(super::parse_thread_spec("four"), None);
        assert_eq!(super::parse_thread_spec("4x"), None);
        assert_eq!(super::parse_thread_spec(""), None);
        assert_eq!(super::parse_thread_spec("-2"), None);
    }

    #[test]
    fn unparsable_spec_falls_back_to_all_cores() {
        // An unparsable value must resolve to the available-core count
        // (the unset default), not 1. Exercised through the injectable
        // resolver rather than by mutating the process environment
        // (set_var during a multi-threaded test run races getenv).
        assert_eq!(
            super::resolve_thread_spec(Some("not-a-number")),
            super::available_cores()
        );
        assert_eq!(super::resolve_thread_spec(None), super::available_cores());
        assert_eq!(super::resolve_thread_spec(Some("3")), 3);
        assert_eq!(super::resolve_thread_spec(Some("0")), 1);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = with_num_threads(4, || items.par_iter().map(|x| x + 1).collect());
        assert!(out.is_empty());
    }
}

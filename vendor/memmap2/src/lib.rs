//! Offline shim for the subset of `memmap2` used by this workspace (see
//! `vendor/README.md`): shared file mappings on Linux, read-only
//! ([`Mmap`]) and writable ([`MmapMut`]), dereferencing to byte slices.
//!
//! The shim calls `mmap(2)`/`munmap(2)`/`msync(2)` directly through their
//! C prototypes (the process already links libc), so it needs no external
//! crate. One deliberate API divergence from the real `memmap2`:
//! [`Mmap::map`] and [`MmapMut::map_mut`] are **safe functions** here —
//! the real crate marks them `unsafe` because another process can mutate
//! the file underneath the mapping; this workspace only maps files it
//! owns under `target/`-style private directories, where that hazard is a
//! documented usage rule rather than a per-call-site obligation. When the
//! real crate is swapped in, call sites gain an `unsafe {}` block and
//! nothing else.
//!
//! Zero-length files map to an empty slice without touching `mmap` (the
//! syscall rejects `len == 0`).

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};
use std::ptr::NonNull;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;
const MS_SYNC: c_int = 4;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
}

/// A shared mapping of a whole file: pointer + length + whether `munmap`
/// is owed on drop (zero-length mappings never called `mmap`).
#[derive(Debug)]
struct RawMmap {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the mapping is a plain byte region owned by this handle;
// file-backed pages are as sharable across threads as a `Vec<u8>`'s
// heap allocation as long as nobody truncates the file, which is the
// usage rule documented on the mapping constructors. `ptr` is never
// aliased mutably except through `&mut self` (`as_mut_slice`).
unsafe impl Send for RawMmap {}
// SAFETY: as for `Send` — `&RawMmap` only exposes read access to the
// mapped bytes (`as_slice`, `sync`), which is race-free under the
// single-writer usage rule.
unsafe impl Sync for RawMmap {}

impl RawMmap {
    fn map(file: &File, prot: c_int) -> io::Result<RawMmap> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds usize"))?;
        if len == 0 {
            return Ok(RawMmap {
                ptr: NonNull::dangling(),
                len: 0,
            });
        }
        // SAFETY: fd is valid for the duration of the call; a MAP_SHARED
        // mapping of a regular file at offset 0 with in-range length is
        // exactly the documented use of mmap(2).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                prot,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(RawMmap {
            ptr: NonNull::new(ptr.cast::<u8>())
                .ok_or_else(|| io::Error::other("mmap returned NULL"))?,
            len,
        })
    }

    fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: the region [ptr, ptr + len) stays mapped until drop.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as `as_slice`, plus `&mut self` gives unique access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    fn sync(&self) -> io::Result<()> {
        if self.len == 0 {
            return Ok(());
        }
        // SAFETY: the region is a live mapping created by this handle.
        let rc = unsafe { msync(self.ptr.as_ptr().cast::<c_void>(), self.len, MS_SYNC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for RawMmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: the region was mapped by this handle and is
            // unmapped exactly once.
            unsafe {
                let _ = munmap(self.ptr.as_ptr().cast::<c_void>(), self.len);
            }
        }
    }
}

/// An immutable (read-only) shared mapping of a file.
///
/// ```rust
/// # fn main() -> std::io::Result<()> {
/// let dir = std::env::temp_dir().join(format!("memmap2-shim-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("data.bin");
/// std::fs::write(&path, [1u8, 2, 3])?;
/// let map = memmap2::Mmap::map(&std::fs::File::open(&path)?)?;
/// assert_eq!(&map[..], &[1, 2, 3]);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mmap {
    raw: RawMmap,
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// The caller must keep the file unmodified (and in particular
    /// untruncated) by other writers for the mapping's lifetime — the
    /// usage rule that makes this safe to expose as a safe function in
    /// this offline shim (the real `memmap2` marks it `unsafe`).
    ///
    /// # Errors
    ///
    /// The underlying `mmap(2)` / metadata errors.
    pub fn map(file: &File) -> io::Result<Mmap> {
        Ok(Mmap {
            raw: RawMmap::map(file, PROT_READ)?,
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.raw.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.raw.as_slice()
    }
}

/// A writable shared mapping of a file: stores hit the page cache and
/// reach the file via writeback (or [`MmapMut::flush`]).
#[derive(Debug)]
pub struct MmapMut {
    raw: RawMmap,
}

impl MmapMut {
    /// Maps the whole of `file` read-write (the file must be opened for
    /// writing and already sized — use `File::set_len` first).
    ///
    /// Same single-writer usage rule as [`Mmap::map`].
    ///
    /// # Errors
    ///
    /// The underlying `mmap(2)` / metadata errors.
    pub fn map_mut(file: &File) -> io::Result<MmapMut> {
        Ok(MmapMut {
            raw: RawMmap::map(file, PROT_READ | PROT_WRITE)?,
        })
    }

    /// Synchronously writes dirty pages back to the file (`msync(2)`).
    ///
    /// # Errors
    ///
    /// The underlying `msync(2)` error.
    pub fn flush(&self) -> io::Result<()> {
        self.raw.sync()
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.raw.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.len == 0
    }
}

impl std::ops::Deref for MmapMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.raw.as_slice()
    }
}

impl std::ops::DerefMut for MmapMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.raw.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("memmap2-shim-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn read_only_mapping_sees_file_contents() {
        let dir = scratch("ro");
        let path = dir.join("a.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writable_mapping_round_trips_through_the_file() {
        let dir = scratch("rw");
        let path = dir.join("b.bin");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(64).unwrap();
        let mut map = MmapMut::map_mut(&file).unwrap();
        map[..4].copy_from_slice(&[9, 8, 7, 6]);
        map[60..].copy_from_slice(&[1, 2, 3, 4]);
        map.flush().unwrap();
        drop(map);
        let back = std::fs::read(&path).unwrap();
        assert_eq!(&back[..4], &[9, 8, 7, 6]);
        assert_eq!(&back[60..], &[1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = scratch("empty");
        let path = dir.join("c.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[])
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mappings_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
        assert_send_sync::<MmapMut>();
    }
}

//! Offline shim for the subset of the `rand` crate API used by this
//! workspace (see `vendor/README.md` for why the real crate is not used).
//!
//! Provides [`rngs::SmallRng`] (a splitmix64 generator), the
//! [`SeedableRng`] / [`Rng`] traits with `gen_range` / `gen`, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates). Determinism for a fixed
//! seed is the only distributional guarantee callers rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws one value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic generator (splitmix64). Not cryptographic;
    /// statistically adequate for workload generation and shuffles.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014); public-domain constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements (all of them if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}

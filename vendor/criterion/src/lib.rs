//! Offline shim for the subset of `criterion` used by this workspace
//! (see `vendor/README.md`).
//!
//! Implements the API shape the bench suites are written against —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] / [`criterion_main!`], [`black_box`] — as a small
//! wall-clock harness: each benchmark runs `sample_size` timed samples
//! after one warm-up and prints min/mean times. No statistics, plots, or
//! baselines; swapping in the real criterion later is a manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns `x` opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, one per process.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// Identifier of one benchmark within a group: a name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`, as in the real criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One warm-up plus `sample_size` timed samples.
        for _ in 0..=self.sample_size {
            f(&mut b);
        }
        self.report(&id.into(), &b.samples);
        self
    }

    /// Runs one parameterized benchmark; `f` receives the input too.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..=self.sample_size {
            f(&mut b, input);
        }
        self.report(&id.into(), &b.samples);
        self
    }

    /// Finishes the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        // Drop the warm-up sample recorded first.
        let timed = samples.get(1..).unwrap_or(&[]);
        if timed.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let min = timed.iter().min().unwrap();
        let total: Duration = timed.iter().sum();
        let mean = total / timed.len() as u32;
        println!(
            "{}/{}: min {:?}, mean {:?} over {} samples",
            self.name,
            id.id,
            min,
            mean,
            timed.len()
        );
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (result is passed to [`black_box`]).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            g.finish();
        }
        assert_eq!(runs, 4); // warm-up + 3 samples
    }
}

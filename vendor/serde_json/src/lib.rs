//! Offline shim for the subset of `serde_json` used by this workspace
//! (see `vendor/README.md`): [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`json!`] macro, all built on the vendored
//! `serde` shim's [`Value`] tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Converts `value` to a [`Value`] tree (used by [`json!`]).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors the real
/// `serde_json` signature so call sites are source-compatible.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped data; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from a JSON-like literal. Supports the subset used
/// in this workspace: object literals with string-literal keys, array
/// literals, `null`, and arbitrary `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), "[", "]", |o| {
            for (i, item) in items.iter().enumerate() {
                seq_sep(o, indent, depth + 1, i == 0);
                write_value(item, o, indent, depth + 1);
            }
        }),
        Value::Object(fields) => write_seq(out, indent, depth, fields.is_empty(), "{", "}", |o| {
            for (i, (k, val)) in fields.iter().enumerate() {
                seq_sep(o, indent, depth + 1, i == 0);
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, o, indent, depth + 1);
            }
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: &str,
    close: &str,
    body: impl FnOnce(&mut String),
) {
    out.push_str(open);
    if !empty {
        body(out);
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push_str(close);
}

fn seq_sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({ "n": 3usize, "edges": [json!([0usize, 1usize]), json!([1usize, 2usize])] });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"n":3,"edges":[[0,1],[1,2]]}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"n\": 3"));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_from_str() {
        let pairs: Vec<(usize, usize)> = from_str("[[0,1],[2,3]]").unwrap();
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
        assert!(from_str::<Vec<usize>>("[1,2,").is_err());
        assert!(from_str::<Vec<usize>>("[1] junk").is_err());
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<String>(&s).unwrap(), "a\"b\\c\nd");
    }
}

//! # decolor
//!
//! Facade crate for the *decolor* workspace — a from-scratch reproduction
//! of **"Deterministic Distributed (Δ + o(Δ))-Edge-Coloring, and
//! Vertex-Coloring of Graphs with Bounded Diversity"** (Barenboim, Elkin,
//! Maimon; PODC 2017).
//!
//! Re-exports the substrate crates under stable module names:
//!
//! * [`graph`] — CSR graphs, generators, line graphs, clique covers.
//! * [`runtime`] — synchronous message-passing (LOCAL) simulator.
//! * [`core`] — connectors and the paper's coloring algorithms.
//! * [`baselines`] — greedy, Misra–Gries, Cole–Vishkin, and the (2Δ−1)
//!   distributed baselines.
//!
//! # Quickstart
//!
//! ```rust
//! use decolor::graph::generators;
//! use decolor::core::star_partition::{star_partition_edge_coloring, StarPartitionParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnm(200, 800, 42)?;
//! let result = star_partition_edge_coloring(&g, &StarPartitionParams::for_levels(&g, 1))?;
//! assert!(result.coloring.is_proper(&g));
//! # Ok(())
//! # }
//! ```

pub use decolor_baselines as baselines;
pub use decolor_core as core;
pub use decolor_graph as graph;
pub use decolor_runtime as runtime;

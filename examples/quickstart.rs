//! Quickstart: edge-color a random graph with the paper's star-partition
//! algorithm and compare against the classical baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use decolor::baselines::greedy::greedy_edge_coloring;
use decolor::baselines::misra_gries::misra_gries_edge_coloring;
use decolor::core::star_partition::{star_partition_edge_coloring, StarPartitionParams};
use decolor::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random 16-regular communication network on 512 nodes.
    let g = generators::random_regular(512, 16, 42)?;
    let delta = g.max_degree();
    println!(
        "graph: n = {}, m = {}, Δ = {delta}",
        g.num_vertices(),
        g.num_edges()
    );

    // The paper's Theorem 4.1 with x = 1: a 4Δ-edge-coloring.
    let result = star_partition_edge_coloring(&g, &StarPartitionParams::for_levels(&g, 1))?;
    assert!(result.coloring.is_proper(&g));
    println!(
        "star partition (x = 1): {} colors (bound 4Δ = {}), {} rounds, {} messages",
        result.coloring.palette(),
        4 * delta,
        result.stats.rounds,
        result.stats.messages,
    );

    // Deeper recursion trades colors for rounds (Theorem 4.1, x = 2).
    let deeper = star_partition_edge_coloring(&g, &StarPartitionParams::for_levels(&g, 2))?;
    println!(
        "star partition (x = 2): {} colors (bound 8Δ = {}), {} rounds",
        deeper.coloring.palette(),
        8 * delta,
        deeper.stats.rounds,
    );

    // Baselines: centralized optimum and the greedy floor.
    let vizing = misra_gries_edge_coloring(&g);
    println!(
        "misra–gries (centralized): {} colors (Δ + 1 = {})",
        vizing.palette(),
        delta + 1
    );
    let greedy = greedy_edge_coloring(&g);
    println!(
        "greedy (centralized):      {} colors (2Δ − 1 = {})",
        greedy.palette(),
        2 * delta - 1
    );
    Ok(())
}

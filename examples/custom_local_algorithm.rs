//! Writing your own LOCAL algorithm against the runtime's `NodeProgram`
//! API: a distributed maximal independent set (greedy-by-ID), verified
//! centrally afterwards.
//!
//! This is the extension surface a downstream user gets: the same
//! simulator the paper's algorithms run on, with measured rounds.
//!
//! Run with: `cargo run --release --example custom_local_algorithm`

use decolor::graph::generators;
use decolor::runtime::program::{run_program, NodeContext, NodeProgram, Outcome};
use decolor::runtime::IdAssignment;

/// Messages a node broadcasts once it decides.
#[derive(Clone, Default)]
enum Announce {
    /// "I joined the MIS" — neighbors must stay out. (The `Default`
    /// derive seeds the runtime's reusable inbox slots; a default
    /// message is never actually delivered.)
    #[default]
    Joined,
    /// "I stepped aside (id attached)" — lower-ID neighbors stop waiting.
    Stepped(u64),
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Undecided,
    AnnouncedIn,
    AnnouncedOut,
}

/// Greedy-by-ID MIS: a node joins once every higher-ID neighbor has
/// stepped aside; it steps aside as soon as any neighbor joins.
/// Adjacent nodes can never join simultaneously (the higher one always
/// decides first), so independence is maintained.
struct MisNode {
    id: u64,
    pending_above: std::collections::HashSet<u64>,
    state: State,
}

impl NodeProgram for MisNode {
    type Message = Announce;
    type Output = bool;

    fn round(
        &mut self,
        _ctx: &NodeContext,
        inbox: &[(usize, Announce)],
    ) -> Outcome<Announce, bool> {
        let mut neighbor_joined = false;
        for (_, msg) in inbox {
            match *msg {
                Announce::Joined => neighbor_joined = true,
                Announce::Stepped(nid) => {
                    self.pending_above.remove(&nid);
                }
            }
        }
        match self.state {
            // Decided nodes already announced last round; halt now.
            State::AnnouncedIn => Outcome::Halt(true),
            State::AnnouncedOut => Outcome::Halt(false),
            State::Undecided if neighbor_joined => {
                self.state = State::AnnouncedOut;
                Outcome::Continue(vec![(usize::MAX, Announce::Stepped(self.id))])
            }
            State::Undecided if self.pending_above.is_empty() => {
                self.state = State::AnnouncedIn;
                Outcome::Continue(vec![(usize::MAX, Announce::Joined)])
            }
            State::Undecided => Outcome::Continue(vec![]),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::gnm(400, 1600, 9)?;
    let ids = IdAssignment::shuffled(g.num_vertices(), 4);

    // Each node starts knowing its neighbors' IDs (one setup round in a
    // real deployment; the paper's model assumes port-visible IDs).
    let run = run_program(
        &g,
        |v| MisNode {
            id: ids.id(v),
            pending_above: g
                .neighbors(v)
                .map(|u| ids.id(u))
                .filter(|&nid| nid > ids.id(v))
                .collect(),
            state: State::Undecided,
        },
        10_000,
    )
    .map_err(|e| format!("program did not converge: {e}"))?;

    // Verify MIS: independent + maximal.
    let in_set: Vec<bool> = run.outputs.clone();
    for (_, [u, v]) in g.edge_list() {
        assert!(!(in_set[u.index()] && in_set[v.index()]), "not independent");
    }
    for v in g.vertices() {
        if !in_set[v.index()] {
            assert!(
                g.neighbors(v).any(|u| in_set[u.index()]),
                "not maximal at {v}"
            );
        }
    }
    println!(
        "greedy-by-ID MIS: {} of {} vertices in the set, {} rounds, {} messages",
        in_set.iter().filter(|&&b| b).count(),
        g.num_vertices(),
        run.stats.rounds,
        run.stats.messages
    );
    Ok(())
}

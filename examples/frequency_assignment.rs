//! Frequency assignment on a planar-like backbone network (the channel
//! allocation motivation of §1.2) using the full Section 5 stack.
//!
//! Backbone links need frequencies such that links sharing a tower never
//! share a frequency — an edge coloring. Planar-ish backbones have tiny
//! arboricity, so Corollary 5.5 assigns ≈ Δ frequencies where the naive
//! distributed approach needs 2Δ − 1 and simple star partition 4Δ.
//!
//! Run with: `cargo run --release --example frequency_assignment`

use decolor::core::arboricity::{corollary55, theorem52};
use decolor::core::delta_plus_one::SubroutineConfig;
use decolor::graph::{generators, ops};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A backbone: grid trunk + random access trees hanging off it.
    let trunk = generators::grid(12, 12)?;
    let access = generators::forest_union(400, 2, 10, 17)?;
    let g = ops::disjoint_union(&trunk, &access);
    let delta = g.max_degree();
    println!(
        "backbone: n = {}, links = {}, Δ = {delta}, degeneracy = {}",
        g.num_vertices(),
        g.num_edges(),
        decolor::graph::properties::degeneracy_ordering(&g).degeneracy
    );

    let cfg = SubroutineConfig::default();
    let t52 = theorem52(&g, 2, 2.5, cfg)?;
    println!(
        "Theorem 5.2:    {} frequencies (Δ + {}), {} rounds",
        t52.coloring.palette(),
        t52.coloring.palette() as i64 - delta as i64,
        t52.stats.rounds
    );

    let (c55, params) = corollary55(&g, 2, cfg)?;
    println!(
        "Corollary 5.5:  {} frequencies (Δ + {}), {} rounds (picked x = {}, q = {:.1})",
        c55.coloring.palette(),
        c55.coloring.palette() as i64 - delta as i64,
        c55.stats.rounds,
        params.x,
        params.q
    );

    // Spectrum utilization per frequency.
    let classes = t52.coloring.classes();
    let used = classes.iter().filter(|c| !c.is_empty()).count();
    println!(
        "spectrum: {used} frequencies carry traffic; mean {:.1} links per frequency",
        g.num_edges() as f64 / used.max(1) as f64
    );
    Ok(())
}

//! Link scheduling in a wireless sensor network (the paper's §1.2
//! motivation, citing Gandham–Dawande–Prakash \[19\]).
//!
//! Sensors are points in the unit square; links connect pairs within
//! radio range. A proper edge coloring is exactly a TDMA schedule: links
//! with the same color transmit in the same time slot without sharing an
//! endpoint. Fewer colors = shorter schedule period.
//!
//! Run with: `cargo run --release --example sensor_scheduling`

use decolor::baselines::misra_gries::misra_gries_edge_coloring;
use decolor::core::star_partition::{star_partition_edge_coloring, StarPartitionParams};
use decolor::graph::{generators, properties};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::unit_disk(800, 0.06, 7)?;
    let stats = properties::degree_stats(&g);
    println!(
        "sensor network: n = {}, links = {}, Δ = {}, mean degree {:.2}",
        g.num_vertices(),
        g.num_edges(),
        stats.max,
        stats.mean
    );

    // Distributed schedule via the paper's 4Δ algorithm — each sensor
    // only talks to its radio neighbors, no central coordinator.
    let res = star_partition_edge_coloring(&g, &StarPartitionParams::for_levels(&g, 1))?;
    let slots = res.coloring.distinct_colors();
    println!(
        "distributed TDMA schedule: {} slots, computed in {} LOCAL rounds",
        slots, res.stats.rounds
    );

    // Per-slot utilization: how many links fire in each slot.
    let classes = res.coloring.classes();
    let busiest = classes.iter().map(Vec::len).max().unwrap_or(0);
    let active: Vec<usize> = classes.iter().map(Vec::len).filter(|&l| l > 0).collect();
    println!(
        "slot utilization: {} non-empty slots, busiest slot carries {} links, mean {:.1}",
        active.len(),
        busiest,
        g.num_edges() as f64 / active.len().max(1) as f64
    );

    // What a central scheduler could do (Vizing): the lower envelope.
    let central = misra_gries_edge_coloring(&g);
    println!(
        "centralized reference: {} slots (Δ + 1 = {})",
        central.distinct_colors(),
        stats.max + 1
    );
    println!(
        "schedule-length ratio distributed/centralized: {:.2}×",
        slots as f64 / central.distinct_colors().max(1) as f64
    );
    Ok(())
}

//! Open-shop scheduling via edge coloring (the paper's §1.2 motivation,
//! citing Williamson et al. \[37\]).
//!
//! Jobs and machines form a bipartite graph; each unit-length task is an
//! edge (job, machine). A proper edge coloring with k colors is a
//! k-round schedule where no job or machine does two tasks at once. The
//! optimum is Δ (König); the paper's one-sided greedy (Lemma 5.1 with
//! empty precoloring) achieves deg_A + deg_B − 1 distributively.
//!
//! Run with: `cargo run --release --example open_shop_scheduling`

use decolor::baselines::misra_gries::misra_gries_edge_coloring;
use decolor::core::crossing_merge::one_sided_edge_coloring;
use decolor::graph::GraphBuilder;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (jobs, machines) = (40usize, 25usize);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);

    // Every job needs work on a random subset of machines.
    let mut b = GraphBuilder::new(jobs + machines);
    for j in 0..jobs {
        for m in 0..machines {
            if rng.gen_bool(0.3) {
                b.add_edge(j, jobs + m)?;
            }
        }
    }
    let g = b.build();
    let delta = g.max_degree();
    println!(
        "open shop: {jobs} jobs × {machines} machines, {} unit tasks, Δ = {delta}",
        g.num_edges()
    );

    // Distributed schedule: jobs are the A side (they label their tasks);
    // machines greedily pick rounds. Palette deg_A + deg_B − 1 ≤ 2Δ − 1.
    let deg_a = (0..jobs)
        .map(|j| g.degree(decolor::graph::VertexId::new(j)))
        .max()
        .unwrap_or(0);
    let deg_b = (0..machines)
        .map(|m| g.degree(decolor::graph::VertexId::new(jobs + m)))
        .max()
        .unwrap_or(0);
    let in_a: Vec<bool> = (0..jobs + machines).map(|v| v < jobs).collect();
    let (schedule, stats) = one_sided_edge_coloring(&g, &in_a, (deg_a + deg_b - 1) as u64)?;
    println!(
        "distributed schedule: makespan {} rounds (deg_A + deg_B − 1 = {}), {} LOCAL rounds",
        schedule.distinct_colors(),
        deg_a + deg_b - 1,
        stats.rounds
    );

    // Centralized optimum-ish: Vizing gives Δ + 1 ≥ optimum = Δ (König).
    let central = misra_gries_edge_coloring(&g);
    println!(
        "centralized schedule: makespan {} (optimum = Δ = {delta})",
        central.distinct_colors()
    );

    // Print the first few rounds of the distributed schedule.
    let classes = schedule.classes();
    for (round, tasks) in classes.iter().take(3).enumerate() {
        let pretty: Vec<String> = tasks
            .iter()
            .take(6)
            .map(|&e| {
                let [u, v] = g.endpoints(e);
                format!("J{}→M{}", u.index(), v.index() - jobs)
            })
            .collect();
        println!(
            "  round {round}: {} tasks ({}…)",
            tasks.len(),
            pretty.join(", ")
        );
    }
    Ok(())
}

//! Vertex-coloring a bounded-diversity graph: the line graph of a
//! 3-uniform hypergraph (Table 2 of the paper, D = 3).
//!
//! Hyperedges model 3-party meetings; two meetings conflict when they
//! share a participant. A proper vertex coloring of the conflict graph is
//! a meeting schedule. The conflict graph has diversity ≤ 3 (one clique
//! per participant), so CD-Coloring applies with D = 3.
//!
//! Run with: `cargo run --release --example hypergraph_diversity`

use decolor::core::analysis;
use decolor::core::cd_coloring::{cd_coloring, CdParams};
use decolor::graph::generators;
use decolor::runtime::IdAssignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 400 people, 700 three-person meetings, ≤ 12 meetings per person.
    let h = generators::random_uniform_hypergraph(400, 700, 3, 12, 21)?;
    let lg = h.line_graph();
    let (d, s) = (lg.cover.diversity(), lg.cover.max_clique_size());
    println!(
        "conflict graph: {} meetings, {} conflicts, diversity D = {d}, max clique S = {s}, Δ = {}",
        lg.graph.num_vertices(),
        lg.graph.num_edges(),
        lg.graph.max_degree()
    );

    let ids = IdAssignment::shuffled(lg.graph.num_vertices(), 3);
    for x in 1..=3usize {
        let params = CdParams::for_levels(s, x);
        let res = cd_coloring(&lg.graph, &lg.cover, &params, &ids)?;
        assert!(res.coloring.is_proper(&lg.graph));
        println!(
            "CD-Coloring x = {x} (t = {:>2}): {:>5} colors used, palette {:>6} \
             (paper bound D^{}S = {}), {} rounds",
            params.t,
            res.coloring.distinct_colors(),
            res.coloring.palette(),
            x + 1,
            analysis::table2_ours_colors(d as u64, s as u64, x as u32),
            res.stats.rounds,
        );
    }

    // The greedy floor for context: χ ≤ D(S − 1) + 1 for this family.
    let greedy = decolor::baselines::greedy::greedy_degeneracy_coloring(&lg.graph);
    println!(
        "greedy (centralized): {} colors; chromatic bound D(S−1)+1 = {}",
        greedy.distinct_colors(),
        d * (s - 1) + 1
    );
    Ok(())
}

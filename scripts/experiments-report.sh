#!/usr/bin/env bash
# Benchmark provenance: render target/experiments.jsonl — the JSON record
# stream every bench bin appends to — into EXPERIMENTS.md, diffing the
# measured palettes/rounds against the paper's analytic columns.
#
#   ./scripts/experiments-report.sh            # render existing records
#   ./scripts/experiments-report.sh --refresh  # re-run the quick probes
#                                              # first (scaling/table1/
#                                              # table2/section5), then
#                                              # render
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--refresh" ]]; then
    rm -f target/experiments.jsonl
    echo "==> regenerating records (quick probes)"
    cargo run --release -q -p decolor-bench --bin scaling -- --quick
    cargo run --release -q -p decolor-bench --bin scaling -- --quick --threads 1,4
    cargo run --release -q -p decolor-bench --bin scaling -- --quick --relayout
    cargo run --release -q -p decolor-bench --bin table1 -- --quick || true
    cargo run --release -q -p decolor-bench --bin table2 -- --quick || true
    cargo run --release -q -p decolor-bench --bin section5 -- --quick || true
fi

echo "==> rendering EXPERIMENTS.md"
cargo run --release -q -p decolor-bench --bin experiments_report > EXPERIMENTS.md
echo "wrote EXPERIMENTS.md ($(grep -c '^|' EXPERIMENTS.md) table lines)"

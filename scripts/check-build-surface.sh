#!/usr/bin/env bash
# Build-surface check: everything that must *compile and launch* beyond
# `cargo build && cargo test` — the facade examples, the criterion bench
# suites, and the CLI binary end-to-end. Run from the repo root; CI runs
# this verbatim.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> workspace invariants (decolor-lint)"
cargo run -q -p decolor-lint

echo "==> examples compile (facade crate)"
cargo build --examples

expected_examples=(custom_local_algorithm frequency_assignment hypergraph_diversity
    open_shop_scheduling quickstart sensor_scheduling)
for ex in "${expected_examples[@]}"; do
    [[ -f "examples/$ex.rs" ]] || { echo "missing example source: $ex"; exit 1; }
    [[ -x "target/debug/examples/$ex" ]] || { echo "example did not build: $ex"; exit 1; }
done
echo "    all ${#expected_examples[@]} examples built"

echo "==> bench suites compile (criterion, harness = false)"
cargo bench --no-run --workspace
expected_benches=(table1_edge_coloring table2_diversity_coloring section5_arboricity
    connectors subroutines ablations)
for b in "${expected_benches[@]}"; do
    [[ -f "crates/bench/benches/$b.rs" ]] || { echo "missing bench source: $b"; exit 1; }
done
echo "    all ${#expected_benches[@]} bench suites compiled"

echo "==> CLI end-to-end"
# Also covered by `cargo test --workspace`; kept so this script alone
# certifies the whole build surface (it costs <1 s once compiled).
cargo test -q -p decolor-cli
cargo run -q -p decolor-cli -- --help >/dev/null
cargo run -q -p decolor-cli -- --version

echo "build surface OK"

#!/usr/bin/env bash
# Full equivalence matrix: the workspace test suite under
# DECOLOR_THREADS ∈ {1, 4}, plus the scaling perf-smoke across
# backend ∈ {ram, mmap} at both pool sizes — so every push exercises the
# thread-count-invariance AND storage-backend-equivalence proptests on
# the complete matrix (the in-process tests pin mmap ≡ ram bit-for-bit;
# the smoke legs additionally drive the real bench binaries end-to-end).
#
# Every pool size also runs the crash-recovery smoke: the release-built
# crash_recovery suite including its million-vertex `#[ignore]`d test
# (journaled build killed mid-stream and resumed, chunked Linial killed
# between rounds and resumed, all byte-identical), plus a scaling run on
# the --checkpoint (journaled build + round checkpoint) path.
#
# Usage: scripts/test-matrix.sh [--quick]
#   --quick  skip the full test suite legs, run only the bench smokes
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "=== decolor-lint (workspace invariants) ==="
cargo run -q -p decolor-lint

for threads in 1 4; do
    if [[ "$QUICK" == 0 ]]; then
        echo "=== cargo test (DECOLOR_THREADS=$threads) ==="
        DECOLOR_THREADS=$threads cargo test -q --workspace
        echo "=== cargo test, overflow checks on (DECOLOR_THREADS=$threads) ==="
        DECOLOR_THREADS=$threads RUSTFLAGS="-C overflow-checks=on" cargo test -q --workspace
    fi
    for backend in ram mmap; do
        echo "=== scaling --quick --backend $backend (DECOLOR_THREADS=$threads) ==="
        DECOLOR_THREADS=$threads cargo run --release -q -p decolor-bench --bin scaling -- \
            --quick --backend "$backend"
    done
    for row in t53 t54; do
        echo "=== scaling --quick --only $row --backend mmap (DECOLOR_THREADS=$threads) ==="
        DECOLOR_THREADS=$threads cargo run --release -q -p decolor-bench --bin scaling -- \
            --quick --only "$row" --backend mmap
    done
    echo "=== scaling --quick --relayout (DECOLOR_THREADS=$threads) ==="
    DECOLOR_THREADS=$threads cargo run --release -q -p decolor-bench --bin scaling -- \
        --quick --relayout
    echo "=== crash-recovery smoke (DECOLOR_THREADS=$threads) ==="
    DECOLOR_THREADS=$threads cargo test -q --release --test crash_recovery -- --include-ignored
    DECOLOR_THREADS=$threads cargo run --release -q -p decolor-bench --bin scaling -- \
        --quick --backend mmap --checkpoint
done
echo "=== scaling --quick --threads 1,4 (in-process thread axis) ==="
cargo run --release -q -p decolor-bench --bin scaling -- --quick --threads 1,4
grep -q '"threads":1' target/experiments.jsonl
grep -q '"threads":4' target/experiments.jsonl
echo "test matrix green: threads {1,4} x backend {ram,mmap} + relayout + thread axis + crash recovery"
